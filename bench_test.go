package sirl_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§9), plus ablation benches for Castor's design
// choices (DESIGN.md). Each benchmark iteration regenerates the experiment
// at a reduced scale so `go test -bench=.` finishes in minutes; run the
// cmd/experiments binary for full laptop-scale tables.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/castor"
	"repro/internal/coverage"
	"repro/internal/datasets"
	"repro/internal/experiments"
	"repro/internal/ilp"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/relstore"
	"repro/internal/subsume"
)

// reportObsMetrics attaches the per-op values of the run's key counters
// (§7.5 machinery: coverage tests executed, cache skips, store tuples
// scanned) to the benchmark output.
func reportObsMetrics(b *testing.B, reg *obs.Registry) {
	b.Helper()
	n := float64(b.N)
	b.ReportMetric(float64(reg.Get(obs.CCoverageTests))/n, "covtests/op")
	b.ReportMetric(float64(reg.Get(obs.CCoverageSkipped))/n, "covskips/op")
	b.ReportMetric(float64(reg.Get(obs.CCoverageCacheHits))/n, "covhits/op")
	b.ReportMetric(float64(reg.Get(obs.CTuplesScanned))/n, "tuples/op")
}

// benchConfig is the reduced scale used by every table/figure benchmark.
func benchConfig() experiments.Config {
	return experiments.Config{Scale: 0.12, Folds: 2, Parallelism: 2, Seed: 1}
}

func BenchmarkTable2Stats(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable9HIV(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable10UWCSE(b *testing.B) {
	cfg := benchConfig()
	reg := obs.NewRegistry()
	cfg.Obs = obs.NewRun(nil, reg)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 20 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
	reportObsMetrics(b, reg)
}

func BenchmarkTable11IMDb(b *testing.B) {
	cfg := benchConfig()
	cfg.Scale = 0.25
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table11(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable12GeneralINDs(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table12(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable13StoredProcedures(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table13(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) > 0 {
			b.ReportMetric(rows[0].SpeedupWithProcs, "speedup")
		}
	}
}

func BenchmarkFigure2Parallelism(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(cfg, []int{1, 2, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3QueryComplexity(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3(cfg, 3, []int{4, 6})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) > 0 {
			b.ReportMetric(rows[0].AvgMQs, "avgMQs")
		}
	}
}

// --- ablations -----------------------------------------------------------

// benchUWCSEProblem builds one small UW-CSE problem for the ablations.
func benchUWCSEProblem(tb testing.TB, indexed bool) *ilp.Problem {
	tb.Helper()
	cfg := datasets.DefaultUWCSE()
	cfg.Students, cfg.Courses = 16, 12
	ds, err := datasets.GenerateUWCSE(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	prob, err := ds.Problem("Original")
	if err != nil {
		tb.Fatal(err)
	}
	if !indexed {
		v := ds.Variants[0]
		un := relstore.NewUnindexedInstance(v.Schema)
		for _, r := range v.Schema.Relations() {
			for _, tp := range v.Instance.Table(r.Name).Tuples() {
				un.MustInsert(r.Name, tp...)
			}
		}
		prob.Instance = un
	}
	return prob
}

func benchCastorParams() ilp.Params {
	p := ilp.Defaults()
	p.Sample = 4
	p.BeamWidth = 2
	return p
}

func runCastor(b *testing.B, prob *ilp.Problem, params ilp.Params) {
	b.Helper()
	def, err := castor.New().Learn(prob, params)
	if err != nil {
		b.Fatal(err)
	}
	if def.IsEmpty() {
		b.Fatal("learned nothing")
	}
}

// buildScoringCandidates builds one beam-sized batch of bottom-clause
// generalizations (leave-one-literal-out, the shape ARMG produces) for the
// candidate-scoring benchmarks.
func buildScoringCandidates(tb testing.TB, prob *ilp.Problem) []coverage.Candidate {
	tb.Helper()
	plan := relstore.CompilePlan(prob.Instance.Schema(), false)
	bottom := castor.BottomClause(prob, plan, prob.Pos[0], benchCastorParams())
	var cands []coverage.Candidate
	for drop := range bottom.Body {
		body := make([]logic.Atom, 0, len(bottom.Body)-1)
		body = append(body, bottom.Body[:drop]...)
		body = append(body, bottom.Body[drop+1:]...)
		cands = append(cands, coverage.Candidate{Clause: &logic.Clause{Head: bottom.Head, Body: body}})
	}
	return cands
}

// benchScoreBatch times one candidate-scoring configuration; shared between
// BenchmarkCandidateScoring and the BENCH_castor.json emitter.
func benchScoreBatch(b *testing.B, prob *ilp.Problem, cands []coverage.Candidate, workers int, disableCache bool) {
	params := benchCastorParams()
	params.CoverageMode = ilp.CoverageSubsumption
	params.Parallelism = workers
	params.DisableCoverageCache = disableCache
	reg := obs.NewRegistry()
	params.Obs = obs.NewRun(nil, reg)
	tester := ilp.NewTester(prob, params)
	// Warm the saturation cache so both variants time scoring, not
	// bottom-clause construction.
	tester.ScoreBatch(cands, prob.Pos, prob.Neg, coverage.NoBound, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scores := tester.ScoreBatch(cands, prob.Pos, prob.Neg, coverage.NoBound, 0)
		if len(scores) != len(cands) {
			b.Fatalf("scores = %d, want %d", len(scores), len(cands))
		}
	}
	reportObsMetrics(b, reg)
	if workers > 1 {
		// Whole-run worker utilization of the scoring pool, for the
		// bench-smoke pool_busy_ratio floor gate.
		b.ReportMetric(reg.Gauge(obs.GPoolBusyRatio), "pool_busy_ratio")
		// Wall-weighted critical-chain/mean-chain quotient, for the
		// bench-smoke pool_straggler_ratio ceiling gate: a healthy pool
		// keeps the slowest worker's chain near the mean.
		b.ReportMetric(reg.Gauge(obs.GPoolStraggler), "pool_straggler_ratio")
	}
}

// BenchmarkCandidateScoring isolates the batched candidate scorer: one
// leave-one-literal-out batch scored against every example, serial versus
// one worker per core. The memo cache is off so every iteration measures raw
// scoring; the "cached" variant leaves it on to show the steady-state cost
// once the memo cache answers repeats.
func BenchmarkCandidateScoring(b *testing.B) {
	prob := benchUWCSEProblem(b, true)
	cands := buildScoringCandidates(b, prob)
	b.Run("serial", func(b *testing.B) { benchScoreBatch(b, prob, cands, 1, true) })
	b.Run("parallel", func(b *testing.B) { benchScoreBatch(b, prob, cands, runtime.GOMAXPROCS(0), true) })
	b.Run("cached", func(b *testing.B) { benchScoreBatch(b, prob, cands, runtime.GOMAXPROCS(0), false) })
}

// subsumptionShape is one (source body, target body) pair exercising a
// distinct regime of the θ-subsumption engine. Targets are ground, like the
// bottom clauses coverage testing probes.
type subsumptionShape struct {
	name  string
	cBody []logic.Atom
	dBody []logic.Atom
	want  bool
}

// subsumptionShapes builds the benchmark clause pairs: a dense
// repeated-variable component (heavy backtracking, both satisfiable and
// not), a long chain (propagation-bound), and a ground mismatch (the
// fail-fast path constant indexing should answer without search).
func subsumptionShapes() []subsumptionShape {
	// Dense component: source demands p(Xi,Xj) for every i<j over 6
	// variables; the target is the i<j edge set over 8 constants minus a
	// few edges, so the matcher must search for a 6-subset avoiding the
	// holes. Removing one endpoint of two disjoint missing edges leaves a
	// witness (satisfiable); four disjoint missing edges cannot all be
	// avoided by dropping two constants (unsatisfiable, full search).
	denseSrc := func() []logic.Atom {
		var body []logic.Atom
		for i := 0; i < 6; i++ {
			for j := i + 1; j < 6; j++ {
				body = append(body, logic.NewAtom("p", logic.Var(fmt.Sprintf("X%d", i)), logic.Var(fmt.Sprintf("X%d", j))))
			}
		}
		return body
	}
	denseTgt := func(missing [][2]int) []logic.Atom {
		gap := make(map[[2]int]bool, len(missing))
		for _, m := range missing {
			gap[m] = true
		}
		var body []logic.Atom
		for i := 0; i < 8; i++ {
			for j := i + 1; j < 8; j++ {
				if gap[[2]int{i, j}] {
					continue
				}
				body = append(body, logic.GroundAtom("p", fmt.Sprintf("a%d", i), fmt.Sprintf("a%d", j)))
			}
		}
		return body
	}
	// Chain: a 12-literal variable chain into a 48-constant ground chain
	// with a dead-end decoy branch at every node; forward pruning should
	// discard the decoys without descending into them.
	var chainSrc, chainTgt []logic.Atom
	for i := 0; i < 12; i++ {
		chainSrc = append(chainSrc, logic.NewAtom("q", logic.Var(fmt.Sprintf("Y%d", i)), logic.Var(fmt.Sprintf("Y%d", i+1))))
	}
	for i := 0; i < 48; i++ {
		chainTgt = append(chainTgt, logic.GroundAtom("q", fmt.Sprintf("c%d", i), fmt.Sprintf("c%d", i+1)))
		chainTgt = append(chainTgt, logic.GroundAtom("q", fmt.Sprintf("c%d", i), fmt.Sprintf("dead%d", i)))
	}
	// Ground mismatch: every source literal anchors on a constant the
	// target never holds in that position, over a 200-tuple target.
	var mismatchSrc, mismatchTgt []logic.Atom
	for i := 0; i < 10; i++ {
		mismatchSrc = append(mismatchSrc, logic.NewAtom("r", logic.Var(fmt.Sprintf("Z%d", i)), logic.Const("absent")))
	}
	for i := 0; i < 200; i++ {
		mismatchTgt = append(mismatchTgt, logic.GroundAtom("r", fmt.Sprintf("e%d", i), fmt.Sprintf("v%d", i%7)))
	}
	return []subsumptionShape{
		{"dense_sat", denseSrc(), denseTgt([][2]int{{0, 1}, {2, 3}}), true},
		{"dense_unsat", denseSrc(), denseTgt([][2]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}}), false},
		{"chain", chainSrc, chainTgt, true},
		{"ground_mismatch", mismatchSrc, mismatchTgt, false},
	}
}

// benchSubsumptionCompiled times the compile-once/match-many path on one
// shape; shared between BenchmarkSubsumption and the BENCH_castor.json
// emitter.
func benchSubsumptionCompiled(b *testing.B, shape subsumptionShape) {
	reg := obs.NewRegistry()
	run := obs.NewRun(nil, reg)
	cd := subsume.CompileBody(shape.dBody)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := cd.SubsumesBodyR(run, shape.cBody, nil); got != shape.want {
			b.Fatalf("%s: got %v, want %v", shape.name, got, shape.want)
		}
	}
	b.ReportMetric(float64(reg.Get(obs.CSubsumptionNodes))/float64(b.N), "nodes/op")
}

// BenchmarkSubsumption measures the θ-subsumption engine itself on the
// shapes above, reporting backtracking nodes per op. The oneshot variants
// pay target compilation every call (the engine's Subsumes/SubsumesBody
// entry points); the compiled variants compile the target once and probe
// it repeatedly, the coverage-testing access pattern.
func BenchmarkSubsumption(b *testing.B) {
	for _, shape := range subsumptionShapes() {
		b.Run(shape.name+"/oneshot", func(b *testing.B) {
			reg := obs.NewRegistry()
			run := obs.NewRun(nil, reg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := subsume.SubsumesBodyR(run, shape.cBody, shape.dBody, nil); got != shape.want {
					b.Fatalf("%s: got %v, want %v", shape.name, got, shape.want)
				}
			}
			b.ReportMetric(float64(reg.Get(obs.CSubsumptionNodes))/float64(b.N), "nodes/op")
		})
		b.Run(shape.name+"/compiled", func(b *testing.B) { benchSubsumptionCompiled(b, shape) })
	}
}

// benchBottomClause times ground-bottom-clause saturation with one worker
// count; shared between BenchmarkBottomClause and the BENCH_castor.json
// emitter. Besides the counter-derived tuples/op, it reports the relstore
// access statistics of the construction — tuples the store actually
// examined and tuples pulled in by IND-chase expansions.
func benchBottomClause(b *testing.B, prob *ilp.Problem, plan *relstore.Plan, workers int) {
	params := benchCastorParams()
	params.Parallelism = workers
	reg := obs.NewRegistry()
	params.Obs = obs.NewRun(nil, reg)
	prob.Instance.ResetStoreStats()
	var lits int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc := castor.GroundBottomClause(prob, plan, prob.Pos[i%len(prob.Pos)], params)
		lits += len(bc.Body)
	}
	n := float64(b.N)
	b.ReportMetric(float64(lits)/n, "lits/op")
	b.ReportMetric(float64(reg.Get(obs.CTuplesScanned))/n, "tuples/op")
	var scanned, expansions int64
	for _, st := range prob.Instance.StoreStats() {
		scanned += st.TuplesScanned
		expansions += st.INDExpansions
	}
	b.ReportMetric(float64(scanned)/n, "tuples_scanned/op")
	b.ReportMetric(float64(expansions)/n, "ind_expansions/op")
}

// BenchmarkBottomClause measures Castor's ground-bottom-clause saturation
// (IND chasing included) on UW-CSE, serial versus the worker pool.
func BenchmarkBottomClause(b *testing.B) {
	prob := benchUWCSEProblem(b, true)
	plan := relstore.CompilePlan(prob.Instance.Schema(), false)
	for _, c := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", runtime.GOMAXPROCS(0)}} {
		b.Run(c.name, func(b *testing.B) { benchBottomClause(b, prob, plan, c.workers) })
	}
}

// BenchmarkAblationCoverageMode compares direct database evaluation with
// subsumption against ground bottom clauses (§7.5.3).
func BenchmarkAblationCoverageMode(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    ilp.CoverageMode
	}{{"db", ilp.CoverageDB}, {"subsumption", ilp.CoverageSubsumption}} {
		b.Run(mode.name, func(b *testing.B) {
			prob := benchUWCSEProblem(b, true)
			params := benchCastorParams()
			params.CoverageMode = mode.m
			reg := obs.NewRegistry()
			params.Obs = obs.NewRun(nil, reg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runCastor(b, prob, params)
			}
			reportObsMetrics(b, reg)
		})
	}
}

// BenchmarkAblationCoverageCache toggles the §7.5.4 known-covered shortcut.
func BenchmarkAblationCoverageCache(b *testing.B) {
	for _, c := range []struct {
		name    string
		disable bool
	}{{"on", false}, {"off", true}} {
		b.Run(c.name, func(b *testing.B) {
			prob := benchUWCSEProblem(b, true)
			params := benchCastorParams()
			params.DisableCoverageCache = c.disable
			reg := obs.NewRegistry()
			params.Obs = obs.NewRun(nil, reg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runCastor(b, prob, params)
			}
			reportObsMetrics(b, reg)
		})
	}
}

// BenchmarkAblationMinimization toggles θ-subsumption clause reduction
// (§7.5.5).
func BenchmarkAblationMinimization(b *testing.B) {
	for _, c := range []struct {
		name string
		on   bool
	}{{"on", true}, {"off", false}} {
		b.Run(c.name, func(b *testing.B) {
			prob := benchUWCSEProblem(b, true)
			params := benchCastorParams()
			params.Minimize = c.on
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runCastor(b, prob, params)
			}
		})
	}
}

// BenchmarkObsOverhead compares an uninstrumented Castor run (nil Obs,
// the nop default) with one feeding a live counter registry; the delta is
// the cost of the instrumentation itself.
func BenchmarkObsOverhead(b *testing.B) {
	for _, c := range []struct {
		name string
		live bool
	}{{"nop", false}, {"registry", true}} {
		b.Run(c.name, func(b *testing.B) {
			prob := benchUWCSEProblem(b, true)
			params := benchCastorParams()
			if c.live {
				params.Obs = obs.NewRun(nil, obs.NewRegistry())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runCastor(b, prob, params)
			}
		})
	}
}

// --- relstore: legacy versus columnar ------------------------------------

// relstoreBenchData is the shared input of the relstore load/probe
// benchmarks: the HIV Initial instance's raw rows (extracted once so load
// iterations time store construction alone) plus the probe workload —
// present and absent bond tuples and atom constants, the values
// bottom-clause saturation probes with.
type relstoreBenchData struct {
	schema  *relstore.Schema
	rels    []string
	rows    map[string][][]string
	total   int
	present []relstore.Tuple
	absent  []relstore.Tuple
	atoms   []string
}

func benchRelstoreData(tb testing.TB) *relstoreBenchData {
	tb.Helper()
	cfg := datasets.DefaultHIV2K4K()
	cfg.Only = "Initial"
	ds, err := datasets.GenerateHIV(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	v := ds.Variants[0]
	d := &relstoreBenchData{schema: v.Schema, rows: make(map[string][][]string)}
	for _, r := range v.Schema.Relations() {
		d.rels = append(d.rels, r.Name)
		v.Instance.Table(r.Name).ForEachTuple(func(tp relstore.Tuple) bool {
			d.rows[r.Name] = append(d.rows[r.Name], append([]string(nil), tp...))
			d.total++
			return true
		})
	}
	for i, row := range d.rows["bonds"] {
		if i%7 != 0 {
			continue
		}
		d.present = append(d.present, relstore.Tuple(row))
		// Swapping the endpoints and mangling one atom name yields a tuple
		// that is never in the store but probes the same key distribution.
		d.absent = append(d.absent, relstore.Tuple{row[0], row[2], row[1] + "x"})
		d.atoms = append(d.atoms, row[1])
	}
	return d
}

// benchRelstoreLoad times building (and for the columnar store freezing) a
// full instance from raw rows; shared with the BENCH_castor.json emitter.
func benchRelstoreLoad(b *testing.B, d *relstoreBenchData, columnar bool) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if columnar {
			inst := relstore.NewInstance(d.schema)
			for _, rel := range d.rels {
				for _, row := range d.rows[rel] {
					inst.MustInsert(rel, row...)
				}
			}
			inst.Freeze()
		} else {
			inst := relstore.NewLegacyInstance(d.schema)
			for _, rel := range d.rels {
				for _, row := range d.rows[rel] {
					inst.MustInsert(rel, row...)
				}
			}
		}
	}
	b.ReportMetric(float64(d.total), "tuples/op")
}

func BenchmarkRelstoreLoad(b *testing.B) {
	d := benchRelstoreData(b)
	b.Run("legacy", func(b *testing.B) { benchRelstoreLoad(b, d, false) })
	b.Run("columnar", func(b *testing.B) { benchRelstoreLoad(b, d, true) })
}

// benchRelstoreProbe runs the store probe mix against one implementation:
// per op, two exact-membership probes (one hit, one miss) and one
// bound-column literal probe answered the way each implementation's solver
// answers it — the access pattern coverage testing issues millions of
// times per learning run.
func benchRelstoreProbe(b *testing.B, d *relstoreBenchData, contains func(relstore.Tuple) bool, literal func(string) int) {
	b.ReportAllocs()
	b.ResetTimer()
	var hits, rows int
	for i := 0; i < b.N; i++ {
		if contains(d.present[i%len(d.present)]) {
			hits++
		}
		if contains(d.absent[i%len(d.absent)]) {
			b.Fatal("absent tuple found")
		}
		rows += literal(d.atoms[i%len(d.atoms)])
	}
	if hits == 0 || rows == 0 {
		b.Fatal("probe workload found nothing")
	}
	b.ReportMetric(float64(rows)/float64(b.N), "rows/op")
}

// benchRelstoreContaining is the colder saturation probe of bottom-clause
// construction (tuples holding a constant in any column), kept as its own
// pair so the gated probe benchmark stays the hot path.
func benchRelstoreContaining(b *testing.B, d *relstoreBenchData, containing func(string) int) {
	b.ReportAllocs()
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		rows += containing(d.atoms[i%len(d.atoms)])
	}
	if rows == 0 {
		b.Fatal("probe workload found nothing")
	}
	b.ReportMetric(float64(rows)/float64(b.N), "rows/op")
}

// benchLegacyBonds/benchColumnarBonds build each store once and return its
// bonds table.
func benchLegacyBonds(d *relstoreBenchData) *relstore.LegacyTable {
	inst := relstore.NewLegacyInstance(d.schema)
	for _, rel := range d.rels {
		for _, row := range d.rows[rel] {
			inst.MustInsert(rel, row...)
		}
	}
	return inst.Table("bonds")
}

func benchColumnarBonds(d *relstoreBenchData) *relstore.Table {
	inst := relstore.NewInstance(d.schema)
	for _, rel := range d.rels {
		for _, row := range d.rows[rel] {
			inst.MustInsert(rel, row...)
		}
	}
	inst.Freeze()
	return inst.Table("bonds")
}

// benchRelstoreProbeLegacy/Columnar adapt each store's probe surface to
// benchRelstoreProbe's closures. The literal probe is the operation the
// solver issues per body literal with one bound argument: the legacy
// evaluator materialized the matching tuples through TuplesWith, the
// columnar evaluator resolves the shared CSR posting list and binds values
// in place, so each side runs its own hot path on the same query stream.
func benchRelstoreProbeLegacy(b *testing.B, d *relstoreBenchData) {
	t := benchLegacyBonds(d)
	req := make(map[int]string, 1)
	benchRelstoreProbe(b, d, t.Contains,
		func(v string) int { req[1] = v; return len(t.TuplesWith(req)) })
}

func benchRelstoreProbeColumnar(b *testing.B, d *relstoreBenchData) {
	t := benchColumnarBonds(d)
	benchRelstoreProbe(b, d, t.Contains,
		func(v string) int { return len(t.MatchingIndexes(1, v)) })
}

// BenchmarkRelstoreProbe compares the frozen columnar store's probe
// throughput against the legacy map-based store on an identical workload;
// the BENCH emitter derives speedup_vs_legacy and mem_ratio_vs_legacy
// extras from the pair, gated as absolute floors in CI. The containing
// sub-benchmarks cover the saturation probe, ungated.
func BenchmarkRelstoreProbe(b *testing.B) {
	d := benchRelstoreData(b)
	b.Run("legacy", func(b *testing.B) { benchRelstoreProbeLegacy(b, d) })
	b.Run("columnar", func(b *testing.B) { benchRelstoreProbeColumnar(b, d) })
	lt, ct := benchLegacyBonds(d), benchColumnarBonds(d)
	b.Run("containing/legacy", func(b *testing.B) {
		benchRelstoreContaining(b, d, func(v string) int { return len(lt.TuplesContaining(v)) })
	})
	b.Run("containing/columnar", func(b *testing.B) {
		benchRelstoreContaining(b, d, func(v string) int { return len(ct.TuplesContaining(v)) })
	})
}

// BenchmarkAblationIndexes compares the indexed store with full scans.
func BenchmarkAblationIndexes(b *testing.B) {
	for _, c := range []struct {
		name    string
		indexed bool
	}{{"indexed", true}, {"scan", false}} {
		b.Run(c.name, func(b *testing.B) {
			prob := benchUWCSEProblem(b, c.indexed)
			params := benchCastorParams()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runCastor(b, prob, params)
			}
		})
	}
}
