// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all                 # everything, laptop scale
//	experiments -exp table10 -folds 5    # one experiment
//	experiments -exp table9 -scale 0.5   # smaller/faster
//
// Experiments: table2, table9, table10, table11, table12, table13, fig2,
// fig3, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: table2|table9|table10|table11|table12|table13|fig2|fig3|ablations|all")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	folds := flag.Int("folds", 0, "cross-validation folds (0 = per-table default)")
	par := flag.Int("par", 4, "coverage-test parallelism")
	seed := flag.Int64("seed", 1, "random seed")
	fig3Defs := flag.Int("fig3-defs", 10, "random definitions per Figure 3 setting")
	flag.Parse()

	cfg := experiments.Config{
		Scale:       *scale,
		Folds:       *folds,
		Parallelism: *par,
		Seed:        *seed,
		Out:         os.Stdout,
	}

	runners := map[string]func() error{
		"table2":    func() error { _, err := experiments.Table2(cfg); return err },
		"table9":    func() error { _, err := experiments.Table9(cfg); return err },
		"table10":   func() error { _, err := experiments.Table10(cfg); return err },
		"table11":   func() error { _, err := experiments.Table11(cfg); return err },
		"table12":   func() error { _, err := experiments.Table12(cfg); return err },
		"table13":   func() error { _, err := experiments.Table13(cfg); return err },
		"fig2":      func() error { _, err := experiments.Figure2(cfg, nil); return err },
		"fig3":      func() error { _, err := experiments.Figure3(cfg, *fig3Defs, nil); return err },
		"ablations": func() error { _, err := experiments.Ablations(cfg); return err },
	}
	order := []string{"table2", "table9", "table10", "table11", "table12", "table13", "fig2", "fig3", "ablations"}

	var ids []string
	if *exp == "all" {
		ids = order
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		run, ok := runners[strings.TrimSpace(id)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; have %v\n", id, order)
			os.Exit(2)
		}
		if err := run(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			os.Exit(1)
		}
	}
}
