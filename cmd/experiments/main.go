// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all                 # everything, laptop scale
//	experiments -exp table10 -folds 5    # one experiment
//	experiments -exp table9 -scale 0.5   # smaller/faster
//
//	# observability: aggregate counters/timers across every learner run
//	experiments -exp table10 -v -metrics metrics.json -trace trace.jsonl
//	experiments -exp table10 -chrometrace trace.json -report run.json
//	experiments -exp all -http :6060     # live /metrics /progress /debug/pprof/
//	experiments -exp fig2 -cpuprofile cpu.pprof
//
// Experiments: table2, table9, table10, table11, table12, table13, fig2,
// fig3, all. With -metrics/-trace/-chrometrace/-report, one registry and
// one trace stream span all selected experiments (see README
// "Observability").
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: table2|table9|table10|table11|table12|table13|fig2|fig3|ablations|all")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	folds := flag.Int("folds", 0, "cross-validation folds (0 = per-table default)")
	par := flag.Int("par", 4, "coverage-test parallelism")
	seed := flag.Int64("seed", 1, "random seed")
	fig3Defs := flag.Int("fig3-defs", 10, "random definitions per Figure 3 setting")
	verbose := flag.Bool("v", false, "log trace events to stderr")
	traceFile := flag.String("trace", "", "write a JSONL event trace to this file")
	metricsFile := flag.String("metrics", "", "write the JSON metrics report to this file")
	chromeFile := flag.String("chrometrace", "", "write a Chrome trace-event (Perfetto) span trace to this file")
	reportFile := flag.String("report", "", "write the JSON run report (for cmd/obsreport) to this file")
	httpAddr := flag.String("http", "", "serve /metrics, /progress, /debug/flightrecorder and /debug/pprof/ on this address (e.g. :6060)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	flightFile := flag.String("flightrecorder", "", "write flight-recorder dumps (JSONL) to this file (default: stderr on dump)")
	watchdogStall := flag.Duration("watchdog-stall", 0, "trip the stall watchdog after this long without heartbeat progress (0 = off)")
	sampleResources := flag.Duration("sample-resources", 0, "sample RSS/heap/goroutines every interval into gauges and the flight recorder (0 = off)")
	timelineFile := flag.String("timeline", "", "write the metric timeline (JSONL) to this file at run end")
	timelineTick := flag.Duration("timeline-tick", obs.DefaultTimelineTick, "metric timeline sampling interval")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var reg *obs.Registry
	var fr *obs.FlightRecorder
	var tracers []obs.Tracer
	var spanSinks []obs.SpanSink
	var traceSink *obs.JSONLSink
	var chromeSink *obs.ChromeTraceSink
	observing := *verbose || *traceFile != "" || *metricsFile != "" ||
		*chromeFile != "" || *reportFile != "" || *httpAddr != "" ||
		*flightFile != "" || *watchdogStall > 0 || *sampleResources > 0 ||
		*timelineFile != ""
	if observing {
		reg = obs.NewRegistry()
		fr = obs.NewFlightRecorder(0)
		fr.SetDumpPath(*flightFile)
		sigq := make(chan os.Signal, 1)
		signal.Notify(sigq, syscall.SIGQUIT)
		defer signal.Stop(sigq)
		go func() {
			// Dump and keep running, like a JVM thread dump.
			for range sigq {
				fr.DumpNow("sigquit") //nolint:errcheck // best-effort operator dump
			}
		}()
		if *verbose {
			tracers = append(tracers, obs.NewTextSink(os.Stderr))
		}
		if *traceFile != "" {
			s, err := obs.CreateJSONLFile(*traceFile)
			if err != nil {
				fatal(err)
			}
			// Tracer for event lines, span sink for tagged span lines —
			// the span graph is reconstructable offline from the trace.
			traceSink = s
			tracers = append(tracers, s)
			spanSinks = append(spanSinks, s)
		}
		if *chromeFile != "" {
			s, err := obs.CreateChromeTraceFile(*chromeFile)
			if err != nil {
				fatal(err)
			}
			chromeSink = s
			spanSinks = append(spanSinks, s)
			tracers = append(tracers, s)
		}
	}
	var prog *obs.Progress
	if *httpAddr != "" {
		prog = obs.NewProgress(reg)
		spanSinks = append(spanSinks, prog)
	}
	var graph *obs.GraphSink
	if *reportFile != "" || *httpAddr != "" {
		graph = obs.NewGraphSink(0)
		spanSinks = append(spanSinks, graph)
	}

	start := time.Now()
	obsRun := obs.NewRun(obs.MultiTracer(tracers...), reg).
		WithSpans(obs.MultiSpanSink(spanSinks...)).
		WithFlightRecorder(fr)
	var tl *obs.Timeline
	if *timelineFile != "" || *httpAddr != "" {
		tl = obs.StartTimeline(obsRun, *timelineTick)
	}
	if *httpAddr != "" {
		srv, err := obs.StartServer(*httpAddr, reg, prog, fr, tl, graph)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("introspection server on http://%s/ (/metrics /progress /timeline /critpath /debug/flightrecorder /debug/pprof/)\n", srv.Addr())
	}
	if *sampleResources > 0 {
		smp := obs.StartSampler(obsRun, *sampleResources)
		defer smp.Stop()
	}
	if *watchdogStall > 0 {
		wd := obs.StartWatchdog(obsRun, *watchdogStall, func(si obs.StallInfo) {
			fmt.Fprintf(os.Stderr, "watchdog: no heartbeat progress for %s (trip %d); live spans:\n",
				si.Stalled.Round(time.Millisecond), si.Trips)
			for _, s := range si.Spans {
				fmt.Fprintf(os.Stderr, "  %s (open %.2fs, id %d)\n", s.Name, s.ElapsedSeconds, s.ID)
			}
			fr.DumpNow("watchdog") //nolint:errcheck // best-effort stall dump
		})
		defer wd.Stop()
	}
	cfg := experiments.Config{
		Scale:       *scale,
		Folds:       *folds,
		Parallelism: *par,
		Seed:        *seed,
		Out:         os.Stdout,
		Obs:         obsRun,
	}

	runners := map[string]func() error{
		"table2":    func() error { _, err := experiments.Table2(cfg); return err },
		"table9":    func() error { _, err := experiments.Table9(cfg); return err },
		"table10":   func() error { _, err := experiments.Table10(cfg); return err },
		"table11":   func() error { _, err := experiments.Table11(cfg); return err },
		"table12":   func() error { _, err := experiments.Table12(cfg); return err },
		"table13":   func() error { _, err := experiments.Table13(cfg); return err },
		"fig2":      func() error { _, err := experiments.Figure2(cfg, nil); return err },
		"fig3":      func() error { _, err := experiments.Figure3(cfg, *fig3Defs, nil); return err },
		"ablations": func() error { _, err := experiments.Ablations(cfg); return err },
	}
	order := []string{"table2", "table9", "table10", "table11", "table12", "table13", "fig2", "fig3", "ablations"}

	var ids []string
	if *exp == "all" {
		ids = order
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		run, ok := runners[strings.TrimSpace(id)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; have %v\n", id, order)
			os.Exit(2)
		}
		if err := run(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			os.Exit(1)
		}
	}

	if traceSink != nil {
		if err := traceSink.Close(); err != nil {
			fatal(err)
		}
	}
	if chromeSink != nil {
		if err := chromeSink.Close(); err != nil {
			fatal(err)
		}
	}
	if reg != nil {
		obsRun.Sample() // final resource sample, so reports carry RSS/heap gauges
		tl.Stop()       // final timeline tick before the snapshot
		if *timelineFile != "" {
			if err := tl.WriteJSONLFile(*timelineFile); err != nil {
				fatal(err)
			}
		}
		report := reg.Snapshot()
		if *reportFile != "" {
			rr := &obs.RunReport{
				Tool:    "experiments",
				When:    time.Now(),
				Dataset: *exp,
				Params: map[string]any{
					"scale": *scale,
					"folds": *folds,
					"par":   *par,
					"seed":  *seed,
				},
				ElapsedSeconds: time.Since(start).Seconds(),
				Metrics:        report,
				Timeline:       tl.Summary(),
			}
			if graph != nil {
				rr.Attrib = obs.Attribute(graph.Graph())
			}
			if err := rr.WriteJSONFile(*reportFile); err != nil {
				fatal(err)
			}
		}
		if *metricsFile != "" {
			f, err := os.Create(*metricsFile)
			if err != nil {
				fatal(err)
			}
			if err := report.WriteJSON(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
		fmt.Println("\nrun metrics (all experiments):")
		report.WriteSummary(os.Stdout)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC() // materialize up-to-date heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
	if *flightFile != "" {
		if err := fr.DumpNow("run_end"); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
