// Command datagen prints the generated benchmark databases: every schema
// variant with its constraints (the content of the paper's Tables 1 and
// 3–8), dataset statistics (Table 2), and optionally the tuples.
//
// Usage:
//
//	datagen                            # schemas + stats for all datasets
//	datagen -dataset hiv -tuples       # include the HIV tuples
//	datagen -dataset hiv -scale 10     # 10x the default entity counts
//	datagen -dataset hiv -scale 895 -variant Initial   # paper scale (≈14M)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datasets"
)

func main() {
	dataset := flag.String("dataset", "all", "dataset: uwcse|hiv|imdb|all")
	tuples := flag.Bool("tuples", false, "also dump tuples")
	scale := flag.Float64("scale", 1, "multiply the default entity counts (1 = the documented laptop-scale defaults)")
	variant := flag.String("variant", "", "HIV only: generate just this variant (skips the transform pipelines at scale)")
	flag.Parse()

	names := []string{"uwcse", "hiv", "imdb"}
	if *dataset != "all" {
		names = []string{*dataset}
	}
	for _, name := range names {
		ds, err := build(name, *scale, *variant)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		fmt.Printf("######## %s ########\n", ds.Name)
		for _, s := range ds.TableStats() {
			fmt.Printf("  %-16s %3d relations %8d tuples  (%d pos / %d neg examples)\n",
				s.Variant, s.Relations, s.Tuples, s.Pos, s.Neg)
		}
		fmt.Println()
		for _, v := range ds.Variants {
			fmt.Printf("==== schema %s/%s ====\n%s\n", ds.Name, v.Name, v.Schema)
			if *tuples {
				for _, rel := range v.Schema.Relations() {
					for _, tp := range v.Instance.Table(rel.Name).Tuples() {
						fmt.Printf("%s%v\n", rel.Name, tp)
					}
				}
				fmt.Println()
			}
		}
	}
}

func build(name string, scale float64, variant string) (*datasets.Dataset, error) {
	switch name {
	case "uwcse":
		cfg := datasets.DefaultUWCSE()
		cfg.Scale = scale
		return datasets.GenerateUWCSE(cfg)
	case "hiv":
		cfg := datasets.DefaultHIV2K4K()
		cfg.Scale = scale
		cfg.Only = variant
		return datasets.GenerateHIV(cfg)
	case "imdb":
		cfg := datasets.DefaultIMDb()
		cfg.Scale = scale
		return datasets.GenerateIMDb(cfg)
	}
	return nil, fmt.Errorf("unknown dataset %q", name)
}
