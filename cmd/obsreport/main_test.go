package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// writeReport marshals a run report into dir and returns its path.
func writeReport(t *testing.T, dir, name string, counters map[string]int64, elapsed float64) string {
	t.Helper()
	r := obs.RunReport{
		Tool:           "castor",
		Dataset:        "UW-CSE",
		Learner:        "Castor",
		ElapsedSeconds: elapsed,
		Metrics:        obs.Report{Counters: counters},
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSelfDiffExitsZero(t *testing.T) {
	dir := t.TempDir()
	p := writeReport(t, dir, "run.json", map[string]int64{"coverage_tests": 228}, 1.5)
	var out, errw strings.Builder
	code := run([]string{"-watch", "coverage_tests,elapsed_seconds", p, p}, &out, &errw)
	if code != 0 {
		t.Fatalf("self diff exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "ok: all 2 watched metrics") {
		t.Errorf("missing ok line:\n%s", out.String())
	}
}

func TestRegressionExitsOne(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", map[string]int64{"coverage_tests": 100}, 1.0)
	newP := writeReport(t, dir, "new.json", map[string]int64{"coverage_tests": 300}, 1.0)
	var out, errw strings.Builder
	code := run([]string{"-watch", "coverage_tests", oldP, newP}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION: coverage_tests") {
		t.Errorf("missing regression line:\n%s", out.String())
	}
}

func TestWithinThresholdExitsZero(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", map[string]int64{"coverage_tests": 100}, 1.0)
	newP := writeReport(t, dir, "new.json", map[string]int64{"coverage_tests": 105}, 1.0)
	var out, errw strings.Builder
	if code := run([]string{"-watch", "coverage_tests", "-threshold", "1.10", oldP, newP}, &out, &errw); code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out.String())
	}
	// A tighter threshold flips the same pair into a regression.
	if code := run([]string{"-watch", "coverage_tests", "-threshold", "1.01", oldP, newP}, &out, &errw); code != 1 {
		t.Fatal("tight threshold did not gate")
	}
}

func TestUnwatchedChangesNeverFail(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", map[string]int64{"coverage_tests": 1}, 1.0)
	newP := writeReport(t, dir, "new.json", map[string]int64{"coverage_tests": 1000}, 50.0)
	var out, errw strings.Builder
	if code := run([]string{oldP, newP}, &out, &errw); code != 0 {
		t.Fatalf("report-only mode exit = %d, want 0", code)
	}
	if !strings.Contains(out.String(), "coverage_tests") {
		t.Errorf("diff table missing changed metric:\n%s", out.String())
	}
}

func TestUsageAndReadErrorsExitTwo(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"only-one.json"}, &out, &errw); code != 2 {
		t.Errorf("one arg: exit = %d, want 2", code)
	}
	if code := run([]string{"a.json", "b.json"}, &out, &errw); code != 2 {
		t.Errorf("missing files: exit = %d, want 2", code)
	}
	dir := t.TempDir()
	p := writeReport(t, dir, "run.json", map[string]int64{"coverage_tests": 1}, 1.0)
	if code := run([]string{"-watch", "no_such_metric", p, p}, &out, &errw); code != 2 {
		t.Errorf("unknown watched metric: exit = %d, want 2", code)
	}
}

// writeReportFull is writeReport with histograms and gauges too.
func writeReportFull(t *testing.T, dir, name string, m obs.Report, elapsed float64) string {
	t.Helper()
	b, err := json.Marshal(obs.RunReport{Tool: "castor", ElapsedSeconds: elapsed, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPerMetricThresholds(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReportFull(t, dir, "old.json", obs.Report{
		Counters:   map[string]int64{"coverage_tests": 100},
		Histograms: map[string]obs.HistStat{"subsumption_probe": {Count: 10, P50: 0.001, P95: 0.002, P99: 0.004}},
	}, 1.0)
	newP := writeReportFull(t, dir, "new.json", obs.Report{
		Counters:   map[string]int64{"coverage_tests": 115},
		Histograms: map[string]obs.HistStat{"subsumption_probe": {Count: 10, P50: 0.001, P95: 0.002, P99: 0.006}},
	}, 1.0)

	// Global threshold 1.10 would fail both; per-metric overrides admit the
	// counter at 1.2× and the p99 at 2×.
	var out, errw strings.Builder
	code := run([]string{"-watch", "coverage_tests=1.2,hist_subsumption_probe_p99=2.0", oldP, newP}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	// Tighten just the histogram percentile: only it regresses.
	out.Reset()
	errw.Reset()
	code = run([]string{"-watch", "coverage_tests=1.2,hist_subsumption_probe_p99=1.2", oldP, newP}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION: hist_subsumption_probe_p99") ||
		strings.Contains(out.String(), "REGRESSION: coverage_tests") {
		t.Errorf("wrong regression set:\n%s", out.String())
	}
	// Malformed threshold: usage error.
	if code := run([]string{"-watch", "coverage_tests=abc", oldP, newP}, &out, &errw); code != 2 {
		t.Errorf("bad threshold: exit = %d, want 2", code)
	}
}

func TestFamilyMismatchExitsTwo(t *testing.T) {
	dir := t.TempDir()
	// "subsumption_probe_ns" is a counter in the old report but a gauge in
	// the new: same flat name, different family — a schema mismatch the
	// gate must refuse to compare, watched or not.
	oldP := writeReportFull(t, dir, "old.json", obs.Report{
		Counters: map[string]int64{"subsumption_probe_ns": 5000},
	}, 1.0)
	newP := writeReportFull(t, dir, "new.json", obs.Report{
		Counters: map[string]int64{},
		Gauges:   map[string]float64{"subsumption_probe_ns": 5000},
	}, 1.0)
	var out, errw strings.Builder
	code := run([]string{oldP, newP}, &out, &errw)
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if !strings.Contains(errw.String(), `metric "subsumption_probe_ns" is a counter in the old report but a gauge in the new`) {
		t.Errorf("stderr lacks the mismatch explanation:\n%s", errw.String())
	}
	if !strings.Contains(out.String(), "SCHEMA MISMATCH: subsumption_probe_ns") {
		t.Errorf("stdout lacks the SCHEMA MISMATCH line:\n%s", out.String())
	}
}

func TestHistogramPercentilesAndGaugesDiff(t *testing.T) {
	dir := t.TempDir()
	rep := obs.Report{
		Counters:   map[string]int64{"coverage_tests": 10},
		Histograms: map[string]obs.HistStat{"coverage_batch": {Count: 4, P50: 0.002, P95: 0.008, P99: 0.016}},
		Gauges:     map[string]float64{"rss_peak_bytes": 1 << 30},
	}
	p := writeReportFull(t, dir, "run.json", rep, 1.0)
	var out, errw strings.Builder
	code := run([]string{"-watch", "hist_coverage_batch_p95,rss_peak_bytes", p, p}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	for _, want := range []string{"hist_coverage_batch_p95", "rss_peak_bytes"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("diff table missing %q:\n%s", want, out.String())
		}
	}
}

func TestWatchedMetricMissingFromOneReportExitsOne(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json",
		map[string]int64{"coverage_tests": 100, "bottom_clauses": 12}, 1.0)
	newP := writeReport(t, dir, "new.json",
		map[string]int64{"coverage_tests": 100}, 1.0)

	// Watched metric vanished from the new report: exit 1 with a message
	// naming the metric and the side it is missing from.
	var out, errw strings.Builder
	code := run([]string{"-watch", "bottom_clauses", oldP, newP}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if !strings.Contains(errw.String(), `watched metric "bottom_clauses" missing from the new report`) {
		t.Errorf("stderr lacks the missing-metric message:\n%s", errw.String())
	}
	if !strings.Contains(out.String(), "MISSING: bottom_clauses") {
		t.Errorf("stdout lacks the MISSING line:\n%s", out.String())
	}

	// Same pair the other way around: missing from the old report.
	out.Reset()
	errw.Reset()
	code = run([]string{"-watch", "bottom_clauses", newP, oldP}, &out, &errw)
	if code != 1 {
		t.Fatalf("reversed exit = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(errw.String(), `missing from the old report`) {
		t.Errorf("stderr lacks the old-side message:\n%s", errw.String())
	}

	// Unwatched metrics may appear or vanish freely.
	out.Reset()
	errw.Reset()
	if code := run([]string{"-watch", "coverage_tests", oldP, newP}, &out, &errw); code != 0 {
		t.Errorf("unwatched missing metric gated: exit = %d, want 0", code)
	}
}

// writeTimelineReport marshals a run report carrying a timeline digest.
func writeTimelineReport(t *testing.T, dir, name string, busyMean float64) string {
	t.Helper()
	r := obs.RunReport{
		Tool:    "castor",
		Metrics: obs.Report{Counters: map[string]int64{"coverage_tests": 10}},
		Timeline: &obs.TimelineSummary{
			Ticks: 4,
			Series: map[string]obs.TimelineSeriesStat{
				"pool_busy_ratio": {Count: 4, Mean: busyMean, Min: busyMean - 0.1, Max: busyMean + 0.1, Last: busyMean},
			},
		},
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestUtilizationFloorGate(t *testing.T) {
	dir := t.TempDir()
	good := writeTimelineReport(t, dir, "good.json", 0.8)
	bad := writeTimelineReport(t, dir, "bad.json", 0.3)

	// Floor satisfied: exit 0.
	var out, errw strings.Builder
	if code := run([]string{"-watch", "timeline_pool_busy_ratio_mean@>=0.6", good, good}, &out, &errw); code != 0 {
		t.Fatalf("floor met: exit = %d, want 0\n%s%s", code, out.String(), errw.String())
	}
	// Floor violated: exit 1.
	out.Reset()
	errw.Reset()
	if code := run([]string{"-watch", "timeline_pool_busy_ratio_mean@>=0.6", good, bad}, &out, &errw); code != 1 {
		t.Fatalf("floor broken: exit = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION: timeline_pool_busy_ratio_mean") {
		t.Errorf("missing regression line:\n%s", out.String())
	}
	// Floor gates ignore the baseline: a pre-timeline old report passes.
	oldNoTimeline := writeReport(t, dir, "old.json", map[string]int64{"coverage_tests": 10}, 1.0)
	out.Reset()
	errw.Reset()
	if code := run([]string{"-watch", "timeline_pool_busy_ratio_mean@>=0.6", oldNoTimeline, good}, &out, &errw); code != 0 {
		t.Fatalf("floor vs timeline-less baseline: exit = %d, want 0\n%s%s", code, out.String(), errw.String())
	}
	// Metric absent from both reports stays a usage error: exit 2.
	out.Reset()
	errw.Reset()
	if code := run([]string{"-watch", "timeline_pool_busy_ratio_mean@>=0.6", oldNoTimeline, oldNoTimeline}, &out, &errw); code != 2 {
		t.Fatalf("floor on absent metric: exit = %d, want 2\n%s", code, out.String())
	}
	// Malformed entry: exit 2.
	if code := run([]string{"-watch", "timeline_pool_busy_ratio_mean@>=abc", good, good}, &out, &errw); code != 2 {
		t.Fatalf("malformed floor: exit = %d, want 2", code)
	}
}

func TestMinRatioGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", map[string]int64{"coverage_cache_hits": 100}, 1.0)
	newGood := writeReport(t, dir, "good.json", map[string]int64{"coverage_cache_hits": 95}, 1.0)
	newBad := writeReport(t, dir, "bad.json", map[string]int64{"coverage_cache_hits": 40}, 1.0)
	var out, errw strings.Builder
	if code := run([]string{"-watch", "coverage_cache_hits>=0.9", oldP, newGood}, &out, &errw); code != 0 {
		t.Fatalf("min ratio met: exit = %d, want 0\n%s%s", code, out.String(), errw.String())
	}
	out.Reset()
	if code := run([]string{"-watch", "coverage_cache_hits>=0.9", oldP, newBad}, &out, &errw); code != 1 {
		t.Fatalf("min ratio broken: exit = %d, want 1\n%s", code, out.String())
	}
	// Max-ratio gates (name=r) still work alongside.
	out.Reset()
	if code := run([]string{"-watch", "coverage_cache_hits=1.5,coverage_cache_hits>=0.9", oldP, newGood}, &out, &errw); code != 0 {
		t.Fatalf("mixed gates: exit = %d, want 0\n%s", code, out.String())
	}
}
