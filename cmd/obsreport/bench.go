package main

// Benchmark-file gating (-bench): instead of run reports, compare two
// BENCH_castor.json files — the multi-document shape TestEmitBenchJSON
// writes, one document per GOMAXPROCS setting — and gate CI on scaling
// regressions. Watch entries name a benchmark and one of its metrics and
// pick a direction:
//
//	obsreport -bench -cpus 8 \
//	    -watch 'CandidateScoring/parallel.ns_per_op=1.15,CandidateScoring/parallel.parallel_speedup>=0.9' \
//	    baseline.json current.json
//
//	name.metric=r     current ≤ r × baseline   (lower is better: timings, allocs)
//	name.metric>=r    current ≥ r × baseline   (higher is better: parallel_speedup)
//	name.metric@>=v   current ≥ v              (absolute floor, baseline ignored)
//	name.metric@<=v   current ≤ v              (absolute ceiling, baseline ignored)
//
// metric is ns_per_op or any key of the entry's metrics map. The pseudo-
// benchmark name "doc" addresses document-level fields instead — e.g.
// doc.rss_peak_bytes=1.5 gates the suite's peak resident set at 1.5× the
// baseline document's. -cpus selects
// the document with that cpus value from each file; omitted, each file
// must hold exactly one document. Exit status matches the report mode: 0
// clean, 1 when a gate fails or a watched metric is missing from one
// side, 2 on usage errors, unreadable files, a missing document, or a
// watched metric absent from both files.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// benchEntry / benchFile mirror the emitter's JSON shape (bench_json_test.go).
type benchEntry struct {
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics"`
}

type benchDoc struct {
	CPUs         int          `json:"cpus"`
	RSSPeakBytes int64        `json:"rss_peak_bytes"`
	Benchmarks   []benchEntry `json:"benchmarks"`
}

type benchFileDoc struct {
	Suite     string     `json:"suite"`
	Documents []benchDoc `json:"documents"`
}

// benchGate is one parsed -watch entry in bench mode.
type benchGate struct {
	bench, metric string
	op            string // "max-ratio", "min-ratio", "abs-min", "abs-max"
	bound         float64
}

func (g benchGate) key() string { return g.bench + "." + g.metric }

// parseBenchGates splits the -watch string into gates. Every entry must
// carry an explicit bound — bench mode has no implicit threshold.
func parseBenchGates(watch string) ([]benchGate, error) {
	var gates []benchGate
	for _, w := range strings.Split(watch, ",") {
		if w = strings.TrimSpace(w); w == "" {
			continue
		}
		var key, val, op string
		switch {
		case strings.Contains(w, "@>="):
			op = "abs-min"
			i := strings.Index(w, "@>=")
			key, val = w[:i], w[i+3:]
		case strings.Contains(w, "@<="):
			op = "abs-max"
			i := strings.Index(w, "@<=")
			key, val = w[:i], w[i+3:]
		case strings.Contains(w, ">="):
			op = "min-ratio"
			i := strings.Index(w, ">=")
			key, val = w[:i], w[i+2:]
		case strings.Contains(w, "="):
			op = "max-ratio"
			i := strings.Index(w, "=")
			key, val = w[:i], w[i+1:]
		default:
			return nil, fmt.Errorf("bad -watch entry %q (want name.metric=r, name.metric>=r, name.metric@>=v or name.metric@<=v)", w)
		}
		g := benchGate{op: op}
		if _, err := fmt.Sscanf(strings.TrimSpace(val), "%g", &g.bound); err != nil {
			return nil, fmt.Errorf("bad bound in -watch entry %q", w)
		}
		// The metric is everything after the last dot; benchmark names
		// themselves contain slashes but no dots.
		dot := strings.LastIndex(key, ".")
		if dot <= 0 || dot == len(key)-1 {
			return nil, fmt.Errorf("bad -watch entry %q (want name.metric)", w)
		}
		g.bench, g.metric = strings.TrimSpace(key[:dot]), strings.TrimSpace(key[dot+1:])
		gates = append(gates, g)
	}
	return gates, nil
}

// loadBenchDoc reads a benchmark file and selects its cpus document. cpus
// ≤ 0 means "the only document".
func loadBenchDoc(path string, cpus int) (*benchDoc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFileDoc
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(f.Documents) == 0 {
		return nil, fmt.Errorf("%s: no documents (regenerate with the multi-document emitter)", path)
	}
	if cpus <= 0 {
		if len(f.Documents) > 1 {
			return nil, fmt.Errorf("%s: %d documents; pick one with -cpus", path, len(f.Documents))
		}
		return &f.Documents[0], nil
	}
	for i := range f.Documents {
		if f.Documents[i].CPUs == cpus {
			return &f.Documents[i], nil
		}
	}
	return nil, fmt.Errorf("%s: no document with cpus=%d", path, cpus)
}

// metricValue resolves a gate's metric in one document. The pseudo-
// benchmark "doc" exposes the document-level fields — currently
// rss_peak_bytes, the process high-water resident set after the suite —
// so memory growth is gateable next to per-benchmark metrics.
func metricValue(doc *benchDoc, bench, metric string) (float64, bool) {
	if bench == "doc" {
		if metric == "rss_peak_bytes" {
			return float64(doc.RSSPeakBytes), doc.RSSPeakBytes > 0
		}
		return 0, false
	}
	for _, b := range doc.Benchmarks {
		if b.Name != bench {
			continue
		}
		if metric == "ns_per_op" {
			return b.NsPerOp, true
		}
		v, ok := b.Metrics[metric]
		return v, ok
	}
	return 0, false
}

// benchJSONGate / benchJSONDoc are the -format json shapes of bench mode.
type benchJSONGate struct {
	Key     string  `json:"key"`
	Op      string  `json:"op"`
	Bound   float64 `json:"bound"`
	Old     float64 `json:"old"`
	New     float64 `json:"new"`
	InOld   bool    `json:"in_old"`
	InNew   bool    `json:"in_new"`
	OK      bool    `json:"ok"`
	Missing bool    `json:"missing,omitempty"`
}

type benchJSONDoc struct {
	Mode     string          `json:"mode"`
	Old      string          `json:"old"`
	New      string          `json:"new"`
	CPUs     int             `json:"cpus"`
	Gates    []benchJSONGate `json:"gates"`
	Failures []string        `json:"failures,omitempty"`
	Missing  []string        `json:"missing,omitempty"`
	Exit     int             `json:"exit"`
}

// absolute reports whether the op inspects only the current file.
func (g benchGate) absolute() bool { return g.op == "abs-min" || g.op == "abs-max" }

// runBench is the -bench entry point, called from run with flags parsed.
func runBench(watch string, cpus int, format, oldPath, newPath string, out, errw io.Writer) int {
	gates, err := parseBenchGates(watch)
	if err != nil {
		fmt.Fprintln(errw, "obsreport:", err)
		return 2
	}
	oldDoc, err := loadBenchDoc(oldPath, cpus)
	if err != nil {
		fmt.Fprintln(errw, "obsreport:", err)
		return 2
	}
	newDoc, err := loadBenchDoc(newPath, cpus)
	if err != nil {
		fmt.Fprintln(errw, "obsreport:", err)
		return 2
	}

	text := format != "json"
	if text {
		fmt.Fprintf(out, "old: %s (cpus=%d)\n", oldPath, oldDoc.CPUs)
		fmt.Fprintf(out, "new: %s (cpus=%d)\n\n", newPath, newDoc.CPUs)
		fmt.Fprintf(out, "%-52s %14s %14s %8s\n", "benchmark.metric", "old", "new", "check")
	}
	var failures, missing []string
	var jsonGates []benchJSONGate
	for _, g := range gates {
		ov, inOld := metricValue(oldDoc, g.bench, g.metric)
		nv, inNew := metricValue(newDoc, g.bench, g.metric)
		if !inOld && !inNew {
			fmt.Fprintf(errw, "obsreport: watched benchmark metric %q absent from both files\n", g.key())
			return 2
		}
		// Absolute gates only need the current file; ratio gates need both.
		if !inNew || (!inOld && !g.absolute()) {
			side := "new"
			if inNew {
				side = "old"
			}
			fmt.Fprintf(errw, "obsreport: watched benchmark metric %q missing from the %s file\n", g.key(), side)
			missing = append(missing, g.key())
			jsonGates = append(jsonGates, benchJSONGate{
				Key: g.key(), Op: g.op, Bound: g.bound, Old: ov, New: nv,
				InOld: inOld, InNew: inNew, Missing: true,
			})
			continue
		}
		var ok bool
		var check string
		switch g.op {
		case "max-ratio":
			ok = nv <= g.bound*ov
			check = fmt.Sprintf("<=%.2fx", g.bound)
		case "min-ratio":
			ok = nv >= g.bound*ov
			check = fmt.Sprintf(">=%.2fx", g.bound)
		case "abs-min":
			ok = nv >= g.bound
			check = fmt.Sprintf(">=%s", num(g.bound))
		case "abs-max":
			ok = nv <= g.bound
			check = fmt.Sprintf("<=%s", num(g.bound))
		}
		if !ok {
			failures = append(failures, g.key())
		}
		if text {
			mark := "*"
			if !ok {
				mark = "!"
			}
			fmt.Fprintf(out, "%-52s %14s %14s %8s %s\n", g.key(), num(ov), num(nv), check, mark)
		} else {
			jsonGates = append(jsonGates, benchJSONGate{
				Key: g.key(), Op: g.op, Bound: g.bound, Old: ov, New: nv,
				InOld: inOld, InNew: inNew, OK: ok,
			})
		}
	}
	exit := 0
	if len(missing) > 0 || len(failures) > 0 {
		exit = 1
	}
	if !text {
		writeJSON(out, benchJSONDoc{
			Mode: "bench", Old: oldPath, New: newPath, CPUs: newDoc.CPUs,
			Gates: jsonGates, Failures: failures, Missing: missing, Exit: exit,
		})
		return exit
	}
	if len(missing) > 0 {
		fmt.Fprintf(out, "\nMISSING: %s absent from one file\n", strings.Join(missing, ", "))
		return 1
	}
	if len(failures) > 0 {
		fmt.Fprintf(out, "\nREGRESSION: %s failed their gates against the baseline\n",
			strings.Join(failures, ", "))
		return 1
	}
	fmt.Fprintf(out, "\nok: all %d watched benchmark metrics within bounds\n", len(gates))
	return 0
}
