package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// writeAttribReport marshals a run report carrying an attribution table.
// selves maps span kind → self time; cum/crit default to self.
func writeAttribReport(t *testing.T, dir, name string, selves map[string]time.Duration) string {
	t.Helper()
	a := &obs.AttribReport{}
	for kind, d := range selves {
		a.WallNS += int64(d)
		a.Rows = append(a.Rows, obs.AttribRow{
			Kind: kind, Count: 1, SelfNS: int64(d), CumNS: int64(d), CritNS: int64(d),
		})
	}
	for i := range a.Rows {
		a.Rows[i].Pct = 100 * float64(a.Rows[i].SelfNS) / float64(a.WallNS)
	}
	r := obs.RunReport{Tool: "castor", Dataset: "UW-CSE", Learner: "Castor", Attrib: a}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAttribRanksInjectedSlowdownFirst(t *testing.T) {
	dir := t.TempDir()
	oldP := writeAttribReport(t, dir, "old.json", map[string]time.Duration{
		"learn":                   400 * time.Millisecond,
		"negative_reduction":      100 * time.Millisecond,
		"shard_candidate_scoring": 300 * time.Millisecond,
		"vanished_in_the_new_run": 5 * time.Millisecond,
	})
	newP := writeAttribReport(t, dir, "new.json", map[string]time.Duration{
		"learn":                   410 * time.Millisecond,
		"negative_reduction":      850 * time.Millisecond, // the injected slowdown
		"shard_candidate_scoring": 310 * time.Millisecond,
	})
	var out, errw strings.Builder
	code := run([]string{"-attrib", oldP, newP}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "top contributor: negative_reduction") {
		t.Errorf("missing top-contributor line:\n%s", out.String())
	}
	// Ranked by Δself: the injected kind's row prints before the others.
	iInj := strings.Index(out.String(), "negative_reduction")
	iLearn := strings.Index(out.String(), "learn ")
	if iInj < 0 || iLearn >= 0 && iInj > iLearn {
		t.Errorf("negative_reduction not ranked first:\n%s", out.String())
	}
}

func TestAttribTopGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeAttribReport(t, dir, "old.json", map[string]time.Duration{
		"learn": 100 * time.Millisecond, "negative_reduction": 100 * time.Millisecond,
	})
	newP := writeAttribReport(t, dir, "new.json", map[string]time.Duration{
		"learn": 105 * time.Millisecond, "negative_reduction": 400 * time.Millisecond,
	})
	var out, errw strings.Builder
	if code := run([]string{"-attrib", "-attrib-top", "negative_reduction", oldP, newP}, &out, &errw); code != 0 {
		t.Fatalf("matching top gate exit = %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "ok: attribution gates passed") {
		t.Errorf("missing ok line:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-attrib", "-attrib-top", "learn", oldP, newP}, &out, &errw); code != 1 {
		t.Fatalf("mismatched top gate exit = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "TOP MISMATCH") {
		t.Errorf("missing TOP MISMATCH line:\n%s", out.String())
	}
	// Self-diff: no kind gains, so any expected top fails.
	out.Reset()
	if code := run([]string{"-attrib", "-attrib-top", "learn", oldP, oldP}, &out, &errw); code != 1 {
		t.Fatalf("no-delta top gate exit = %d, want 1\n%s", code, out.String())
	}
}

func TestAttribMissingTableExitsTwo(t *testing.T) {
	dir := t.TempDir()
	withA := writeAttribReport(t, dir, "with.json", map[string]time.Duration{"learn": time.Second})
	without := writeReport(t, dir, "without.json", map[string]int64{"coverage_tests": 1}, 1.0)
	var out, errw strings.Builder
	if code := run([]string{"-attrib", without, withA}, &out, &errw); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "no attribution table") {
		t.Errorf("missing diagnostic:\n%s", errw.String())
	}
	errw.Reset()
	if code := run([]string{"-attrib", withA, without}, &out, &errw); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestAttribWatchGatesOnSelfTime(t *testing.T) {
	dir := t.TempDir()
	oldP := writeAttribReport(t, dir, "old.json", map[string]time.Duration{
		"learn": 100 * time.Millisecond, "minimize": 100 * time.Millisecond,
	})
	newP := writeAttribReport(t, dir, "new.json", map[string]time.Duration{
		"learn": 100 * time.Millisecond, "minimize": 300 * time.Millisecond,
	})
	var out, errw strings.Builder
	// minimize tripled: a 1.5x ratio gate fails, a 4x one passes.
	if code := run([]string{"-attrib", "-watch", "minimize=1.5", oldP, newP}, &out, &errw); code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION: minimize") {
		t.Errorf("missing regression line:\n%s", out.String())
	}
	if code := run([]string{"-attrib", "-watch", "minimize=4.0", oldP, newP}, &out, &errw); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	// Absolute ceiling in seconds: new self 0.3s fails @<=0.2, passes @<=0.5.
	if code := run([]string{"-attrib", "-watch", "minimize@<=0.2", oldP, newP}, &out, &errw); code != 1 {
		t.Fatalf("ceiling exit = %d, want 1", code)
	}
	if code := run([]string{"-attrib", "-watch", "minimize@<=0.5", oldP, newP}, &out, &errw); code != 0 {
		t.Fatalf("ceiling exit = %d, want 0", code)
	}
	// A kind absent from both tables is a usage error.
	errw.Reset()
	if code := run([]string{"-attrib", "-watch", "no_such_kind", oldP, newP}, &out, &errw); code != 2 {
		t.Fatalf("unknown kind exit = %d, want 2\n%s", code, errw.String())
	}
}

func TestAttribFormatJSON(t *testing.T) {
	dir := t.TempDir()
	oldP := writeAttribReport(t, dir, "old.json", map[string]time.Duration{
		"learn": 100 * time.Millisecond, "negative_reduction": 100 * time.Millisecond,
	})
	newP := writeAttribReport(t, dir, "new.json", map[string]time.Duration{
		"learn": 100 * time.Millisecond, "negative_reduction": 350 * time.Millisecond,
	})
	var out, errw strings.Builder
	code := run([]string{"-attrib", "-attrib-top", "negative_reduction", "-format", "json", oldP, newP}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, errw.String())
	}
	var doc attribJSONDoc
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("-format json output is not valid JSON: %v\n%s", err, out.String())
	}
	if doc.Mode != "attrib" || doc.Top != "negative_reduction" || doc.Exit != 0 {
		t.Errorf("doc = %+v", doc)
	}
	if doc.WallDeltaNS != int64(250*time.Millisecond) {
		t.Errorf("wall delta = %d, want 250ms", doc.WallDeltaNS)
	}
	if len(doc.Rows) != 2 || doc.Rows[0].Kind != "negative_reduction" {
		t.Errorf("rows = %+v, want negative_reduction first", doc.Rows)
	}
	if r := doc.Rows[0]; r.DeltaNS != int64(250*time.Millisecond) || r.Ratio == nil || *r.Ratio != 3.5 {
		t.Errorf("top row = %+v", r)
	}
}

func TestReportAndBenchFormatJSON(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", map[string]int64{"coverage_tests": 100}, 1.0)
	newP := writeReport(t, dir, "new.json", map[string]int64{"coverage_tests": 300}, 1.0)
	var out, errw strings.Builder
	code := run([]string{"-watch", "coverage_tests", "-format", "json", oldP, newP}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var doc reportJSONDoc
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("report json: %v\n%s", err, out.String())
	}
	if doc.Mode != "report" || doc.Exit != 1 || len(doc.Regressions) != 1 {
		t.Errorf("doc = %+v", doc)
	}
	var found bool
	for _, row := range doc.Rows {
		if row.Name == "coverage_tests" {
			found = true
			if !row.Watched || !row.Regressed || row.Ratio == nil || *row.Ratio != 3 {
				t.Errorf("row = %+v", row)
			}
		}
	}
	if !found {
		t.Errorf("no coverage_tests row in %+v", doc.Rows)
	}

	oldB := writeBenchFile(t, dir, "oldb.json", map[int]map[string]map[string]float64{
		8: {"CandidateScoring/parallel": {"pool_straggler_ratio": 1.2}},
	})
	newB := writeBenchFile(t, dir, "newb.json", map[int]map[string]map[string]float64{
		8: {"CandidateScoring/parallel": {"pool_straggler_ratio": 1.4}},
	})
	out.Reset()
	code = run([]string{"-bench", "-cpus", "8", "-format", "json", "-watch",
		"CandidateScoring/parallel.pool_straggler_ratio@<=4", oldB, newB}, &out, &errw)
	if code != 0 {
		t.Fatalf("bench json exit = %d, want 0\n%s", code, errw.String())
	}
	var bdoc benchJSONDoc
	if err := json.Unmarshal([]byte(out.String()), &bdoc); err != nil {
		t.Fatalf("bench json: %v\n%s", err, out.String())
	}
	if bdoc.Mode != "bench" || len(bdoc.Gates) != 1 || !bdoc.Gates[0].OK || bdoc.Gates[0].Op != "abs-max" {
		t.Errorf("bench doc = %+v", bdoc)
	}
}

func TestBenchAbsoluteCeilingGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBenchFile(t, dir, "old.json", map[int]map[string]map[string]float64{
		8: {"CandidateScoring/parallel": {"pool_straggler_ratio": 1.3}},
	})
	newP := writeBenchFile(t, dir, "new.json", map[int]map[string]map[string]float64{
		8: {"CandidateScoring/parallel": {"pool_straggler_ratio": 5.2}},
	})
	var out, errw strings.Builder
	code := run([]string{"-bench", "-cpus", "8", "-watch",
		"CandidateScoring/parallel.pool_straggler_ratio@<=4", oldP, newP}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION: CandidateScoring/parallel.pool_straggler_ratio") {
		t.Errorf("missing regression line:\n%s", out.String())
	}
	// The ceiling only reads the new file: missing from old is fine.
	oldNoMetric := writeBenchFile(t, dir, "old2.json", map[int]map[string]map[string]float64{
		8: {"CandidateScoring/parallel": {"ns_per_op": 100}},
	})
	okNew := writeBenchFile(t, dir, "new2.json", map[int]map[string]map[string]float64{
		8: {"CandidateScoring/parallel": {"pool_straggler_ratio": 2.0}},
	})
	if code := run([]string{"-bench", "-cpus", "8", "-watch",
		"CandidateScoring/parallel.pool_straggler_ratio@<=4", oldNoMetric, okNew}, &out, &errw); code != 0 {
		t.Fatalf("baseline-free ceiling exit = %d, want 0\n%s", code, errw.String())
	}
}

func TestReportCeilingGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", map[string]int64{"coverage_tests": 100}, 1.0)
	newP := writeReport(t, dir, "new.json", map[string]int64{"coverage_tests": 150}, 1.0)
	var out, errw strings.Builder
	if code := run([]string{"-watch", "coverage_tests@<=200", oldP, newP}, &out, &errw); code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, errw.String())
	}
	if code := run([]string{"-watch", "coverage_tests@<=120", oldP, newP}, &out, &errw); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

func TestFormatFlagValidation(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-format", "yaml", "a.json", "b.json"}, &out, &errw); code != 2 {
		t.Fatalf("bad format exit = %d, want 2", code)
	}
	if code := run([]string{"-bench", "-attrib", "a.json", "b.json"}, &out, &errw); code != 2 {
		t.Fatalf("-bench -attrib exit = %d, want 2", code)
	}
}
