package main

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// Attrib mode: diff the span-graph attribution tables of two run reports
// and rank span kinds by how much self time they gained. Where report mode
// answers "which metric moved", attrib mode answers "which *phase* is
// responsible for the wall-clock delta" — the first question of a
// root-cause session on a slow run.
//
//	obsreport -attrib old.json new.json
//	obsreport -attrib -attrib-top negative_reduction old.json new.json
//	obsreport -attrib -watch 'negative_reduction=1.5' old.json new.json
//
// Ranking is by Δself descending (signed), so the kind that grew the most
// prints first and speedups sink to the bottom. share% is the kind's Δself
// as a share of the wall-clock delta; on a pure single-phase slowdown it
// reads ≈100. -attrib-top turns the ranking into a gate: exit 1 unless the
// named kind ranks first with a positive delta — CI injects a known
// slowdown and asserts the profiler fingers it. -watch entries reuse the
// report-mode gate grammar with span kinds as names, applied to the
// kind's self time (ratio gates on new/old self, absolute gates on new
// self in seconds).
//
// Exit status mirrors report mode: 0 ok, 1 gate failure or watched kind
// absent from one report, 2 usage/read errors — including a report with
// no attribution table (the run was not observed with -report wiring) and
// a watched kind absent from both reports.

// attribRow is one span kind's before/after attribution.
type attribRow struct {
	Kind      string   `json:"kind"`
	SelfOldNS int64    `json:"self_old_ns"`
	SelfNewNS int64    `json:"self_new_ns"`
	DeltaNS   int64    `json:"delta_ns"`
	SharePct  float64  `json:"share_of_wall_delta_pct"`
	Ratio     *float64 `json:"ratio,omitempty"` // new/old self; omitted when old is 0
	CumOldNS  int64    `json:"cum_old_ns"`
	CumNewNS  int64    `json:"cum_new_ns"`
	CritOldNS int64    `json:"crit_old_ns"`
	CritNewNS int64    `json:"crit_new_ns"`
	InOld     bool     `json:"in_old"`
	InNew     bool     `json:"in_new"`
}

// attribJSONDoc is the -format json shape of attrib mode.
type attribJSONDoc struct {
	Mode        string      `json:"mode"`
	Old         string      `json:"old"`
	New         string      `json:"new"`
	WallOldNS   int64       `json:"wall_old_ns"`
	WallNewNS   int64       `json:"wall_new_ns"`
	WallDeltaNS int64       `json:"wall_delta_ns"`
	Rows        []attribRow `json:"rows"`
	Top         string      `json:"top,omitempty"` // top positive-delta kind
	TopExpected string      `json:"top_expected,omitempty"`
	Regressions []string    `json:"regressions,omitempty"`
	Missing     []string    `json:"missing,omitempty"`
	Exit        int         `json:"exit"`
}

// runAttrib implements -attrib. It returns the process exit code.
func runAttrib(watch string, threshold float64, top, format, oldPath, newPath string, out, errw io.Writer) int {
	oldRep, err := obs.LoadRunReport(oldPath)
	if err != nil {
		fmt.Fprintln(errw, "obsreport:", err)
		return 2
	}
	newRep, err := obs.LoadRunReport(newPath)
	if err != nil {
		fmt.Fprintln(errw, "obsreport:", err)
		return 2
	}
	for _, c := range []struct {
		path string
		rep  *obs.RunReport
	}{{oldPath, oldRep}, {newPath, newRep}} {
		if c.rep.Attrib == nil {
			fmt.Fprintf(errw, "obsreport: %s has no attribution table; re-run the tool with -report (and, for live runs, -http) so the span graph is captured\n", c.path)
			return 2
		}
	}
	watched, err := parseReportGates(watch, threshold)
	if err != nil {
		fmt.Fprintln(errw, "obsreport:", err)
		return 2
	}

	rows := diffAttrib(oldRep.Attrib, newRep.Attrib)
	wallDelta := newRep.Attrib.WallNS - oldRep.Attrib.WallNS

	// Gates first, so text and json render identical verdicts.
	var regressions, missing []string
	for kind, g := range watched {
		row := findAttribRow(rows, kind)
		if row == nil {
			fmt.Fprintf(errw, "obsreport: watched span kind %q absent from both attribution tables\n", kind)
			return 2
		}
		if (g.needsBaseline() && !row.InOld) || !row.InNew {
			side := "old"
			if !row.InNew {
				side = "new"
			}
			fmt.Fprintf(errw, "obsreport: watched span kind %q missing from the %s report's attribution\n", kind, side)
			missing = append(missing, kind)
			continue
		}
		// Absolute gates are in seconds of self time; ratio gates on
		// new/old self, with a zero baseline reading as +Inf like report
		// mode.
		d := obs.MetricDelta{
			Old:   time.Duration(row.SelfOldNS).Seconds(),
			New:   time.Duration(row.SelfNewNS).Seconds(),
			InOld: row.InOld, InNew: row.InNew,
		}
		if row.Ratio != nil {
			d.Ratio = *row.Ratio
		} else {
			d.Ratio = math.Inf(1)
		}
		if g.fails(d) {
			regressions = append(regressions, kind)
		}
	}
	sort.Strings(regressions)
	sort.Strings(missing)

	topKind := ""
	if len(rows) > 0 && rows[0].DeltaNS > 0 {
		topKind = rows[0].Kind
	}
	topOK := top == "" || topKind == top
	exit := 0
	switch {
	case !topOK, len(regressions) > 0, len(missing) > 0:
		exit = 1
	}

	if format == "json" {
		writeJSON(out, attribJSONDoc{
			Mode: "attrib", Old: oldPath, New: newPath,
			WallOldNS: oldRep.Attrib.WallNS, WallNewNS: newRep.Attrib.WallNS,
			WallDeltaNS: wallDelta, Rows: rows,
			Top: topKind, TopExpected: top,
			Regressions: regressions, Missing: missing, Exit: exit,
		})
		return exit
	}

	fmt.Fprintf(out, "old: %s (%s %s %s, wall %s)\n", oldPath, oldRep.Tool, oldRep.Dataset, oldRep.Learner, secs(oldRep.Attrib.WallNS))
	fmt.Fprintf(out, "new: %s (%s %s %s, wall %s)\n\n", newPath, newRep.Tool, newRep.Dataset, newRep.Learner, secs(newRep.Attrib.WallNS))
	fmt.Fprintf(out, "%-28s %12s %12s %12s %8s %8s\n", "kind", "self old", "self new", "Δself", "share%", "ratio")
	for _, row := range rows {
		mark := " "
		switch {
		case contains(regressions, row.Kind) || contains(missing, row.Kind):
			mark = "!"
		case func() bool { _, ok := watched[row.Kind]; return ok }():
			mark = "*"
		}
		r := "+inf"
		if row.Ratio != nil {
			r = fmt.Sprintf("%.2fx", *row.Ratio)
		}
		fmt.Fprintf(out, "%-28s %12s %12s %12s %8.1f %8s %s\n",
			row.Kind, secs(row.SelfOldNS), secs(row.SelfNewNS), signedSecs(row.DeltaNS), row.SharePct, r, mark)
	}
	fmt.Fprintf(out, "\nwall delta: %s", signedSecs(wallDelta))
	if topKind != "" {
		fmt.Fprintf(out, "; top contributor: %s", topKind)
	}
	fmt.Fprintln(out)
	if !topOK {
		if topKind == "" {
			fmt.Fprintf(out, "TOP MISMATCH: expected %q to rank first by Δself, but no kind gained self time\n", top)
		} else {
			fmt.Fprintf(out, "TOP MISMATCH: expected %q to rank first by Δself, got %q\n", top, topKind)
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(out, "MISSING: %s absent from one report's attribution\n", strings.Join(missing, ", "))
	}
	if len(regressions) > 0 {
		fmt.Fprintf(out, "REGRESSION: %s exceeded their self-time gates\n", strings.Join(regressions, ", "))
	}
	if exit == 0 && (top != "" || len(watched) > 0) {
		fmt.Fprintln(out, "ok: attribution gates passed")
	}
	return exit
}

// diffAttrib joins two attribution tables over the union of span kinds and
// ranks by Δself descending (growth first), ties by kind for determinism.
func diffAttrib(oldA, newA *obs.AttribReport) []attribRow {
	kinds := make(map[string]bool)
	for _, r := range oldA.Rows {
		kinds[r.Kind] = true
	}
	for _, r := range newA.Rows {
		kinds[r.Kind] = true
	}
	wallDelta := newA.WallNS - oldA.WallNS
	rows := make([]attribRow, 0, len(kinds))
	for kind := range kinds {
		o, n := oldA.Row(kind), newA.Row(kind)
		row := attribRow{Kind: kind, InOld: o != nil, InNew: n != nil}
		if o != nil {
			row.SelfOldNS, row.CumOldNS, row.CritOldNS = o.SelfNS, o.CumNS, o.CritNS
		}
		if n != nil {
			row.SelfNewNS, row.CumNewNS, row.CritNewNS = n.SelfNS, n.CumNS, n.CritNS
		}
		row.DeltaNS = row.SelfNewNS - row.SelfOldNS
		if wallDelta != 0 {
			row.SharePct = 100 * float64(row.DeltaNS) / float64(wallDelta)
		}
		if row.SelfOldNS > 0 {
			r := float64(row.SelfNewNS) / float64(row.SelfOldNS)
			row.Ratio = &r
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].DeltaNS != rows[j].DeltaNS {
			return rows[i].DeltaNS > rows[j].DeltaNS
		}
		return rows[i].Kind < rows[j].Kind
	})
	return rows
}

func findAttribRow(rows []attribRow, kind string) *attribRow {
	for i := range rows {
		if rows[i].Kind == kind {
			return &rows[i]
		}
	}
	return nil
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// secs renders nanoseconds as seconds with millisecond precision.
func secs(ns int64) string { return fmt.Sprintf("%.3fs", time.Duration(ns).Seconds()) }

// signedSecs is secs with an explicit sign, for deltas.
func signedSecs(ns int64) string { return fmt.Sprintf("%+.3fs", time.Duration(ns).Seconds()) }
