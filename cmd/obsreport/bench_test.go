package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBenchFile marshals a multi-document benchmark file into dir. docs
// maps cpus → benchmark name → metric name → value; ns_per_op is a metric
// name like any other here.
func writeBenchFile(t *testing.T, dir, name string, docs map[int]map[string]map[string]float64) string {
	t.Helper()
	f := benchFileDoc{Suite: "castor"}
	for cpus, benches := range docs {
		doc := benchDoc{CPUs: cpus}
		for bn, metrics := range benches {
			e := benchEntry{Name: bn, Metrics: map[string]float64{}}
			for mn, v := range metrics {
				if mn == "ns_per_op" {
					e.NsPerOp = v
				} else {
					e.Metrics[mn] = v
				}
			}
			doc.Benchmarks = append(doc.Benchmarks, e)
		}
		f.Documents = append(f.Documents, doc)
	}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchGatesPassWithinBounds(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBenchFile(t, dir, "old.json", map[int]map[string]map[string]float64{
		8: {"CandidateScoring/parallel": {"ns_per_op": 1000, "parallel_speedup": 3.0}},
	})
	newP := writeBenchFile(t, dir, "new.json", map[int]map[string]map[string]float64{
		8: {"CandidateScoring/parallel": {"ns_per_op": 1050, "parallel_speedup": 2.9}},
	})
	var out, errw strings.Builder
	code := run([]string{"-bench", "-cpus", "8", "-watch",
		"CandidateScoring/parallel.ns_per_op=1.15," +
			"CandidateScoring/parallel.parallel_speedup>=0.9," +
			"CandidateScoring/parallel.parallel_speedup@>=1.0",
		oldP, newP}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "ok: all 3 watched benchmark metrics") {
		t.Errorf("missing ok line:\n%s", out.String())
	}
}

func TestBenchSpeedupRegressionExitsOne(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBenchFile(t, dir, "old.json", map[int]map[string]map[string]float64{
		8: {"CandidateScoring/parallel": {"parallel_speedup": 3.0}},
	})
	// Speedup collapsed: 3.0 → 1.2 fails the >=0.9 ratio gate.
	newP := writeBenchFile(t, dir, "new.json", map[int]map[string]map[string]float64{
		8: {"CandidateScoring/parallel": {"parallel_speedup": 1.2}},
	})
	var out, errw strings.Builder
	code := run([]string{"-bench", "-cpus", "8", "-watch",
		"CandidateScoring/parallel.parallel_speedup>=0.9", oldP, newP}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION: CandidateScoring/parallel.parallel_speedup") {
		t.Errorf("missing regression line:\n%s", out.String())
	}
}

func TestBenchAbsoluteFloorFailsBelow(t *testing.T) {
	dir := t.TempDir()
	// parallel_speedup < 1.0 means parallel lost to serial outright; the
	// absolute gate must fail regardless of the baseline's value.
	oldP := writeBenchFile(t, dir, "old.json", map[int]map[string]map[string]float64{
		8: {"CandidateScoring/parallel": {"parallel_speedup": 0.8}},
	})
	newP := writeBenchFile(t, dir, "new.json", map[int]map[string]map[string]float64{
		8: {"CandidateScoring/parallel": {"parallel_speedup": 0.95}},
	})
	var out, errw strings.Builder
	code := run([]string{"-bench", "-cpus", "8", "-watch",
		"CandidateScoring/parallel.parallel_speedup@>=1.0", oldP, newP}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out.String())
	}
}

func TestBenchSlowdownRatioGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBenchFile(t, dir, "old.json", map[int]map[string]map[string]float64{
		4: {"CandidateScoring/serial": {"ns_per_op": 1000}},
	})
	newP := writeBenchFile(t, dir, "new.json", map[int]map[string]map[string]float64{
		4: {"CandidateScoring/serial": {"ns_per_op": 1300}},
	})
	var out, errw strings.Builder
	code := run([]string{"-bench", "-cpus", "4", "-watch",
		"CandidateScoring/serial.ns_per_op=1.15", oldP, newP}, &out, &errw)
	if code != 1 {
		t.Fatalf("1.3x slowdown against a 1.15 gate: exit = %d, want 1\n%s", code, out.String())
	}
}

func TestBenchDocumentSelection(t *testing.T) {
	dir := t.TempDir()
	// The cpus=1 document is clean, cpus=8 regresses: -cpus must pick the
	// right one.
	mk := func(name string, ns8 float64) string {
		return writeBenchFile(t, dir, name, map[int]map[string]map[string]float64{
			1: {"CandidateScoring/serial": {"ns_per_op": 1000}},
			8: {"CandidateScoring/serial": {"ns_per_op": ns8}},
		})
	}
	oldP := mk("old.json", 1000)
	newP := mk("new.json", 5000)
	var out, errw strings.Builder
	if code := run([]string{"-bench", "-cpus", "1", "-watch",
		"CandidateScoring/serial.ns_per_op=1.15", oldP, newP}, &out, &errw); code != 0 {
		t.Fatalf("cpus=1 exit = %d, want 0\n%s%s", code, out.String(), errw.String())
	}
	out.Reset()
	errw.Reset()
	if code := run([]string{"-bench", "-cpus", "8", "-watch",
		"CandidateScoring/serial.ns_per_op=1.15", oldP, newP}, &out, &errw); code != 1 {
		t.Fatalf("cpus=8 exit = %d, want 1\n%s", code, out.String())
	}
	// A cpus value in neither file is a usage error, not a silent pass.
	out.Reset()
	errw.Reset()
	if code := run([]string{"-bench", "-cpus", "16", "-watch",
		"CandidateScoring/serial.ns_per_op=1.15", oldP, newP}, &out, &errw); code != 2 {
		t.Fatalf("cpus=16 exit = %d, want 2\n%s", code, errw.String())
	}
	// Multi-document files without -cpus are ambiguous.
	out.Reset()
	errw.Reset()
	if code := run([]string{"-bench", "-watch",
		"CandidateScoring/serial.ns_per_op=1.15", oldP, newP}, &out, &errw); code != 2 {
		t.Fatalf("no -cpus over 2 documents: exit = %d, want 2\n%s", code, errw.String())
	}
}

// TestBenchDocLevelRSSGate gates the document-level peak resident set via
// the "doc" pseudo-benchmark, alongside an absolute per-benchmark floor —
// the shape of the paper-scale smoke job's watch line.
func TestBenchDocLevelRSSGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rss int64) string {
		f := benchFileDoc{Suite: "castor", Documents: []benchDoc{{
			CPUs: 8, RSSPeakBytes: rss,
			Benchmarks: []benchEntry{{Name: "RelstoreProbe/columnar",
				Metrics: map[string]float64{"speedup_vs_legacy": 4.0}}},
		}}}
		b, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldP := write("old.json", 100<<20)
	watch := "doc.rss_peak_bytes=1.5,RelstoreProbe/columnar.speedup_vs_legacy@>=2.0"
	var out, errw strings.Builder
	if code := run([]string{"-bench", "-cpus", "8", "-watch", watch,
		oldP, write("ok.json", 120<<20)}, &out, &errw); code != 0 {
		t.Fatalf("rss within 1.5x: exit = %d, want 0\n%s%s", code, out.String(), errw.String())
	}
	out.Reset()
	errw.Reset()
	if code := run([]string{"-bench", "-cpus", "8", "-watch", watch,
		oldP, write("bad.json", 200<<20)}, &out, &errw); code != 1 {
		t.Fatalf("rss at 2x: exit = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION: doc.rss_peak_bytes") {
		t.Errorf("missing regression line:\n%s", out.String())
	}
	// A zero/absent rss_peak_bytes is "not recorded", not a zero sample.
	out.Reset()
	errw.Reset()
	if code := run([]string{"-bench", "-cpus", "8", "-watch", watch,
		oldP, write("none.json", 0)}, &out, &errw); code != 1 {
		t.Fatalf("missing rss: exit = %d, want 1\n%s%s", code, out.String(), errw.String())
	}
}

func TestBenchMissingAndMalformedWatches(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBenchFile(t, dir, "old.json", map[int]map[string]map[string]float64{
		8: {"CandidateScoring/serial": {"ns_per_op": 1000}},
	})
	newP := writeBenchFile(t, dir, "new.json", map[int]map[string]map[string]float64{
		8: {"CandidateScoring/serial": {"ns_per_op": 1000}},
	})
	var out, errw strings.Builder
	// Absent from both files → exit 2.
	if code := run([]string{"-bench", "-cpus", "8", "-watch",
		"NoSuch/bench.ns_per_op=1.1", oldP, newP}, &out, &errw); code != 2 {
		t.Fatalf("absent metric exit = %d, want 2\n%s", code, errw.String())
	}
	// No operator → usage error.
	out.Reset()
	errw.Reset()
	if code := run([]string{"-bench", "-cpus", "8", "-watch",
		"CandidateScoring/serial.ns_per_op", oldP, newP}, &out, &errw); code != 2 {
		t.Fatalf("gateless entry exit = %d, want 2\n%s", code, errw.String())
	}
	// Metric present only in the baseline → exit 1 (it stopped being
	// emitted — that is a reportable regression, not a pass).
	withMetric := writeBenchFile(t, dir, "with.json", map[int]map[string]map[string]float64{
		8: {"CandidateScoring/parallel": {"parallel_speedup": 3.0}},
	})
	without := writeBenchFile(t, dir, "without.json", map[int]map[string]map[string]float64{
		8: {"CandidateScoring/parallel": {"other": 1.0}},
	})
	out.Reset()
	errw.Reset()
	if code := run([]string{"-bench", "-cpus", "8", "-watch",
		"CandidateScoring/parallel.parallel_speedup>=0.9", withMetric, without}, &out, &errw); code != 1 {
		t.Fatalf("metric missing from new exit = %d, want 1\n%s", code, errw.String())
	}
}
