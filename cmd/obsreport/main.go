// Command obsreport compares two run reports written with -report and
// prints a metric-by-metric diff. With -watch it acts as a regression
// gate: it exits nonzero when any watched metric in the new report exceeds
// the old value by more than -threshold, which is how CI compares a
// branch's run against a baseline artifact.
//
// Usage:
//
//	obsreport old.json new.json                       # full diff table
//	obsreport -watch elapsed_seconds,coverage_tests \
//	          -threshold 1.10 old.json new.json       # gate: new ≤ 1.10×old
//
// Metric names are the flattened namespace of the run report: counters
// keep their report names (coverage_tests, subsumption_nodes, …), phases
// become <phase>_seconds and <phase>_calls, span aggregates become
// span_<name>_seconds and span_<name>_calls, and elapsed_seconds and the
// definition_* stats are included. Exit status: 0 when no watched metric
// regresses, 1 on a regression or when a watched metric is present in only
// one of the two reports, 2 on usage or read errors (including a watched
// metric absent from both reports).
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("obsreport", flag.ContinueOnError)
	fs.SetOutput(errw)
	watch := fs.String("watch", "", "comma-separated metrics to gate on (empty: report only, never fail)")
	threshold := fs.Float64("threshold", 1.10, "max allowed new/old ratio for watched metrics")
	all := fs.Bool("all", false, "print unchanged metrics too")
	fs.Usage = func() {
		fmt.Fprintln(errw, "usage: obsreport [-watch m1,m2] [-threshold 1.10] [-all] old.json new.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	oldRep, err := obs.LoadRunReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(errw, "obsreport:", err)
		return 2
	}
	newRep, err := obs.LoadRunReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(errw, "obsreport:", err)
		return 2
	}

	watched := make(map[string]bool)
	for _, w := range strings.Split(*watch, ",") {
		if w = strings.TrimSpace(w); w != "" {
			watched[w] = true
		}
	}

	deltas := obs.DiffRunReports(oldRep, newRep)
	fmt.Fprintf(out, "old: %s (%s %s %s)\n", fs.Arg(0), oldRep.Tool, oldRep.Dataset, oldRep.Learner)
	fmt.Fprintf(out, "new: %s (%s %s %s)\n\n", fs.Arg(1), newRep.Tool, newRep.Dataset, newRep.Learner)
	fmt.Fprintf(out, "%-36s %14s %14s %8s\n", "metric", "old", "new", "ratio")
	var regressions, missing []string
	seen := make(map[string]bool)
	for _, d := range deltas {
		seen[d.Name] = true
		if watched[d.Name] && (!d.InOld || !d.InNew) {
			// A watched metric present in only one report is a reportable
			// difference, not a usage error: the run stopped (or started)
			// emitting it. Gate on it explicitly rather than letting the
			// absent side read as a zero.
			side := "old"
			if !d.InNew {
				side = "new"
			}
			fmt.Fprintf(errw, "obsreport: watched metric %q missing from the %s report (old=%s new=%s)\n",
				d.Name, side, num(d.Old), num(d.New))
			missing = append(missing, d.Name)
		}
		regressed := watched[d.Name] && d.Ratio > *threshold
		if regressed {
			regressions = append(regressions, d.Name)
		}
		if !*all && d.Old == d.New && !watched[d.Name] {
			continue // unchanged and unwatched: noise in the default view
		}
		mark := " "
		switch {
		case regressed:
			mark = "!"
		case watched[d.Name]:
			mark = "*"
		}
		fmt.Fprintf(out, "%-36s %14s %14s %7s %s\n",
			d.Name, num(d.Old), num(d.New), ratio(d.Ratio), mark)
	}
	for name := range watched {
		if !seen[name] {
			fmt.Fprintf(errw, "obsreport: watched metric %q absent from both reports\n", name)
			return 2
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(out, "\nMISSING: %s absent from one report\n", strings.Join(missing, ", "))
		return 1
	}
	if len(regressions) > 0 {
		fmt.Fprintf(out, "\nREGRESSION: %s exceeded %.2fx the baseline\n",
			strings.Join(regressions, ", "), *threshold)
		return 1
	}
	if len(watched) > 0 {
		fmt.Fprintf(out, "\nok: all %d watched metrics within %.2fx of the baseline\n",
			len(watched), *threshold)
	}
	return 0
}

// num formats a metric value compactly: integers without a fraction,
// timings with enough digits to compare.
func num(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4f", v)
}

// ratio renders new/old, tolerating the +Inf of a zero baseline.
func ratio(r float64) string {
	if math.IsInf(r, 1) {
		return "+inf"
	}
	return fmt.Sprintf("%.3fx", r)
}
