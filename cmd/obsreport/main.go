// Command obsreport compares two run reports written with -report and
// prints a metric-by-metric diff. With -watch it acts as a regression
// gate: it exits nonzero when any watched metric in the new report exceeds
// the old value by more than -threshold, which is how CI compares a
// branch's run against a baseline artifact.
//
// Usage:
//
//	obsreport old.json new.json                       # full diff table
//	obsreport -watch elapsed_seconds,coverage_tests \
//	          -threshold 1.10 old.json new.json       # gate: new ≤ 1.10×old
//	obsreport -watch 'elapsed_seconds=1.5,hist_subsumption_probe_p99=2.0' \
//	          old.json new.json                       # per-metric thresholds
//	obsreport -attrib old.json new.json               # rank span kinds by Δself
//	obsreport -attrib -attrib-top negative_reduction \
//	          old.json new.json                       # gate: that kind ranks first
//	obsreport -format json ...                        # machine-readable, any mode
//
// Metric names are the flattened namespace of the run report: counters
// keep their report names (coverage_tests, subsumption_nodes, …), phases
// become <phase>_seconds and <phase>_calls, span aggregates become
// span_<name>_seconds and span_<name>_calls, histogram percentiles become
// hist_<name>_p50/_p95/_p99/_count, gauges (rss_peak_bytes, …) keep their
// names, elapsed_seconds and the definition_* stats are included,
// timeline digests appear as timeline_<series>_{mean,min,max,last,count},
// and the attribution table as attrib_<kind>_{self_ns,cum_ns,crit_ns,pct}.
// A -watch entry may carry its own threshold as name=ratio; entries
// without one use -threshold. Three more gate shapes mirror bench mode:
// name>=ratio requires the new/old ratio to stay at or above ratio (a
// minimum, for metrics that must not drop — cache hit counts, busy
// ratios), name@>=value requires the new report's absolute value to
// be at least value, ignoring the baseline entirely (so a utilization
// floor like timeline_pool_busy_ratio_mean@>=0.6 works even against a
// baseline from before the series existed), and name@<=value is the
// matching absolute ceiling (pool_straggler_ratio@<=4). Exit status: 0
// when no watched metric regresses, 1
// on a regression or when a watched metric is present in only one of the
// two reports, 2 on usage or read errors — including a watched metric
// absent from both reports, and a metric whose family differs between the
// reports (say a counter in one and a histogram percentile in the other):
// such values are not comparable, and obsreport refuses to diff them
// rather than silently passing.
//
// -attrib mode diffs the reports' span-graph attribution tables instead
// (see attrib.go); -format json switches every mode to one JSON object on
// stdout so CI can annotate PRs without parsing text tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("obsreport", flag.ContinueOnError)
	fs.SetOutput(errw)
	watch := fs.String("watch", "", "comma-separated metrics to gate on: name, name=maxratio, name>=minratio, name@>=floor, or name@<=ceiling (empty: report only, never fail)")
	threshold := fs.Float64("threshold", 1.10, "max allowed new/old ratio for watched metrics without their own =threshold")
	all := fs.Bool("all", false, "print unchanged metrics too")
	bench := fs.Bool("bench", false, "inputs are BENCH json files, not run reports; -watch entries are name.metric gates (see bench.go)")
	cpus := fs.Int("cpus", 0, "with -bench: select the document with this cpus value (0: the only document)")
	attrib := fs.Bool("attrib", false, "diff the reports' span-graph attribution tables and rank span kinds by self-time delta (see attrib.go)")
	attribTop := fs.String("attrib-top", "", "with -attrib: fail (exit 1) unless this span kind ranks first by self-time delta")
	format := fs.String("format", "text", "output format: text or json (one machine-readable object on stdout)")
	fs.Usage = func() {
		fmt.Fprintln(errw, "usage: obsreport [-watch 'm1,m2=1.5,m3>=0.9,m4@>=0.6,m5@<=4'] [-threshold 1.10] [-all] [-format text|json] old.json new.json")
		fmt.Fprintln(errw, "       obsreport -bench [-cpus N] -watch 'name.metric=r,name.metric>=r,name.metric@>=v,name.metric@<=v' old.json new.json")
		fmt.Fprintln(errw, "       obsreport -attrib [-attrib-top kind] [-watch 'kind=1.5,...'] old.json new.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(errw, "obsreport: unknown -format %q (have text, json)\n", *format)
		return 2
	}
	if *bench && *attrib {
		fmt.Fprintln(errw, "obsreport: -bench and -attrib are mutually exclusive")
		return 2
	}
	if *bench {
		return runBench(*watch, *cpus, *format, fs.Arg(0), fs.Arg(1), out, errw)
	}
	if *attrib {
		return runAttrib(*watch, *threshold, *attribTop, *format, fs.Arg(0), fs.Arg(1), out, errw)
	}
	oldRep, err := obs.LoadRunReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(errw, "obsreport:", err)
		return 2
	}
	newRep, err := obs.LoadRunReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(errw, "obsreport:", err)
		return 2
	}

	watched, err := parseReportGates(*watch, *threshold)
	if err != nil {
		fmt.Fprintln(errw, "obsreport:", err)
		return 2
	}
	isWatched := func(name string) bool { _, ok := watched[name]; return ok }
	text := *format == "text"

	deltas := obs.DiffRunReports(oldRep, newRep)
	if text {
		fmt.Fprintf(out, "old: %s (%s %s %s)\n", fs.Arg(0), oldRep.Tool, oldRep.Dataset, oldRep.Learner)
		fmt.Fprintf(out, "new: %s (%s %s %s)\n\n", fs.Arg(1), newRep.Tool, newRep.Dataset, newRep.Learner)
		fmt.Fprintf(out, "%-36s %14s %14s %8s\n", "metric", "old", "new", "ratio")
	}
	var regressions, missing, mismatched []string
	var jsonRows []reportJSONRow
	seen := make(map[string]bool)
	for _, d := range deltas {
		seen[d.Name] = true
		if d.FamilyMismatch() {
			// Same flat name, different metric family in each report — the
			// values mean different things, so comparing (or gating) them
			// would be garbage. This is a schema error, not a regression.
			fmt.Fprintf(errw, "obsreport: metric %q is a %s in the old report but a %s in the new — not comparable\n",
				d.Name, d.FamilyOld, d.FamilyNew)
			mismatched = append(mismatched, d.Name)
			continue
		}
		needsOld := !isWatched(d.Name) || watched[d.Name].needsBaseline()
		if isWatched(d.Name) && ((needsOld && !d.InOld) || !d.InNew) {
			// A watched metric present in only one report is a reportable
			// difference, not a usage error: the run stopped (or started)
			// emitting it. Gate on it explicitly rather than letting the
			// absent side read as a zero.
			side := "old"
			if !d.InNew {
				side = "new"
			}
			fmt.Fprintf(errw, "obsreport: watched metric %q missing from the %s report (old=%s new=%s)\n",
				d.Name, side, num(d.Old), num(d.New))
			missing = append(missing, d.Name)
		}
		regressed := isWatched(d.Name) && watched[d.Name].fails(d)
		if regressed {
			regressions = append(regressions, d.Name)
		}
		if !*all && d.Old == d.New && !isWatched(d.Name) {
			continue // unchanged and unwatched: noise in the default view
		}
		if text {
			mark := " "
			switch {
			case regressed:
				mark = "!"
			case isWatched(d.Name):
				mark = "*"
			}
			fmt.Fprintf(out, "%-36s %14s %14s %7s %s\n",
				d.Name, num(d.Old), num(d.New), ratio(d.Ratio), mark)
		} else {
			jsonRows = append(jsonRows, reportJSONRow{
				Name: d.Name, Old: d.Old, New: d.New, Ratio: finiteOrNil(d.Ratio),
				InOld: d.InOld, InNew: d.InNew,
				Watched: isWatched(d.Name), Regressed: regressed,
			})
		}
	}
	for name := range watched {
		if !seen[name] {
			fmt.Fprintf(errw, "obsreport: watched metric %q absent from both reports\n", name)
			return 2
		}
	}
	exit := 0
	switch {
	case len(mismatched) > 0:
		exit = 2
	case len(missing) > 0 || len(regressions) > 0:
		exit = 1
	}
	if !text {
		writeJSON(out, reportJSONDoc{
			Mode: "report", Old: fs.Arg(0), New: fs.Arg(1),
			Rows: jsonRows, Regressions: regressions, Missing: missing,
			Mismatched: mismatched, Exit: exit,
		})
		return exit
	}
	if len(mismatched) > 0 {
		fmt.Fprintf(out, "\nSCHEMA MISMATCH: %s changed metric family between the reports\n",
			strings.Join(mismatched, ", "))
		return 2
	}
	if len(missing) > 0 {
		fmt.Fprintf(out, "\nMISSING: %s absent from one report\n", strings.Join(missing, ", "))
		return 1
	}
	if len(regressions) > 0 {
		fmt.Fprintf(out, "\nREGRESSION: %s exceeded their thresholds against the baseline\n",
			strings.Join(regressions, ", "))
		return 1
	}
	if len(watched) > 0 {
		fmt.Fprintf(out, "\nok: all %d watched metrics within threshold of the baseline\n",
			len(watched))
	}
	return 0
}

// reportJSONRow / reportJSONDoc are the -format json shapes of report mode.
type reportJSONRow struct {
	Name      string   `json:"name"`
	Old       float64  `json:"old"`
	New       float64  `json:"new"`
	Ratio     *float64 `json:"ratio,omitempty"` // omitted when the baseline is 0 (infinite)
	InOld     bool     `json:"in_old"`
	InNew     bool     `json:"in_new"`
	Watched   bool     `json:"watched,omitempty"`
	Regressed bool     `json:"regressed,omitempty"`
}

type reportJSONDoc struct {
	Mode        string          `json:"mode"`
	Old         string          `json:"old"`
	New         string          `json:"new"`
	Rows        []reportJSONRow `json:"rows"`
	Regressions []string        `json:"regressions,omitempty"`
	Missing     []string        `json:"missing,omitempty"`
	Mismatched  []string        `json:"mismatched,omitempty"`
	Exit        int             `json:"exit"`
}

// finiteOrNil drops non-finite ratios (zero baselines) from JSON output,
// where Inf has no representation.
func finiteOrNil(v float64) *float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}

// writeJSON emits one indented JSON document on out.
func writeJSON(out io.Writer, doc any) {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	enc.Encode(doc) //nolint:errcheck // stdout write failure has no recovery here
}

// parseReportGates splits a -watch string into per-metric gates. Entries
// without an explicit bound gate at defThreshold as a max ratio.
func parseReportGates(watch string, defThreshold float64) (map[string]reportGate, error) {
	watched := make(map[string]reportGate)
	for _, w := range strings.Split(watch, ",") {
		if w = strings.TrimSpace(w); w == "" {
			continue
		}
		g := reportGate{op: gateMaxRatio, val: defThreshold}
		name := w
		cut := func(sep string) (string, bool) {
			i := strings.Index(w, sep)
			if i < 0 {
				return "", false
			}
			name = strings.TrimSpace(w[:i])
			var v float64
			if _, err := fmt.Sscanf(strings.TrimSpace(w[i+len(sep):]), "%g", &v); err != nil || name == "" {
				return "", false
			}
			g.val = v
			return name, true
		}
		switch {
		case strings.Contains(w, "@>="):
			g.op = gateFloor
			if _, ok := cut("@>="); !ok {
				return nil, fmt.Errorf("bad -watch entry %q (want name@>=value)", w)
			}
		case strings.Contains(w, "@<="):
			g.op = gateCeiling
			if _, ok := cut("@<="); !ok {
				return nil, fmt.Errorf("bad -watch entry %q (want name@<=value)", w)
			}
		case strings.Contains(w, ">="):
			g.op = gateMinRatio
			if _, ok := cut(">="); !ok {
				return nil, fmt.Errorf("bad -watch entry %q (want name>=ratio)", w)
			}
		case strings.IndexByte(w, '=') >= 0:
			if _, ok := cut("="); !ok {
				return nil, fmt.Errorf("bad -watch entry %q (want name or name=threshold)", w)
			}
		}
		watched[name] = g
	}
	return watched, nil
}

// reportGate is one -watch entry's acceptance rule.
type reportGate struct {
	op  int
	val float64
}

const (
	gateMaxRatio = iota // new/old must stay ≤ val (regressions up)
	gateMinRatio        // new/old must stay ≥ val (regressions down)
	gateFloor           // the new value itself must be ≥ val
	gateCeiling         // the new value itself must be ≤ val
)

// needsBaseline reports whether the gate compares against the old report
// (ratio gates) or only inspects the new value (absolute gates).
func (g reportGate) needsBaseline() bool {
	return g.op != gateFloor && g.op != gateCeiling
}

// fails reports whether the delta violates the gate.
func (g reportGate) fails(d obs.MetricDelta) bool {
	switch g.op {
	case gateMinRatio:
		return d.Ratio < g.val
	case gateFloor:
		return d.New < g.val
	case gateCeiling:
		return d.New > g.val
	default:
		return d.Ratio > g.val
	}
}

// num formats a metric value compactly: integers without a fraction,
// timings with enough digits to compare.
func num(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4f", v)
}

// ratio renders new/old, tolerating the +Inf of a zero baseline.
func ratio(r float64) string {
	if math.IsInf(r, 1) {
		return "+inf"
	}
	return fmt.Sprintf("%.3fx", r)
}
