package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ilp"
)

// TestRunWritesMetricsAndTrace drives the full CLI pipeline (uwcse,
// Castor) and checks the acceptance contract of the -metrics and -trace
// flags: the metrics file is valid JSON with nonzero coverage-test and
// cache-hit counters, and every trace line is a standalone JSON object.
func TestRunWritesMetricsAndTrace(t *testing.T) {
	dir := t.TempDir()
	o := options{
		dataset: "uwcse", learner: "castor", coverage: "auto",
		sample: 4, beam: 2, clauseLength: 10, par: 2, seed: 1,
		metricsFile: filepath.Join(dir, "metrics.json"),
		traceFile:   filepath.Join(dir, "trace.jsonl"),
	}
	var out bytes.Buffer
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "learned definition") {
		t.Errorf("run output missing the definition:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "run metrics:") {
		t.Error("run output missing the metrics summary")
	}

	mf, err := os.ReadFile(o.metricsFile)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Counters map[string]int64 `json:"counters"`
		Phases   map[string]struct {
			Seconds float64 `json:"seconds"`
			Calls   int64   `json:"calls"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(mf, &report); err != nil {
		t.Fatalf("metrics file does not parse: %v", err)
	}
	for _, key := range []string{"coverage_tests", "coverage_tests_skipped", "tuples_scanned", "bottom_clauses"} {
		if report.Counters[key] == 0 {
			t.Errorf("metrics counter %s is zero: %v", key, report.Counters)
		}
	}
	if report.Phases["coverage_testing"].Calls == 0 {
		t.Error("metrics report has no coverage_testing phase calls")
	}

	tf, err := os.Open(o.traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	// The trace interleaves event lines ("event" key) with one span line
	// per finished span ("span" key); every line is exactly one of the two.
	events, spans := 0, 0
	sc := bufio.NewScanner(tf)
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("trace line %q does not parse: %v", sc.Text(), err)
		}
		_, isEvent := obj["event"].(string)
		_, isSpan := obj["span"].(string)
		if isEvent == isSpan {
			t.Fatalf("trace line %q is neither an event nor a span line", sc.Text())
		}
		if isEvent {
			events++
		} else {
			spans++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Error("trace file has no event lines")
	}
	if spans == 0 {
		t.Error("trace file has no span lines")
	}
}

func TestCoverageModeFlag(t *testing.T) {
	cases := []struct {
		flag     string
		userData bool
		dataset  string
		want     ilp.CoverageMode
		wantErr  bool
	}{
		{"direct", false, "hiv", ilp.CoverageDB, false},
		{"subsumption", false, "uwcse", ilp.CoverageSubsumption, false},
		{"auto", false, "uwcse", ilp.CoverageDB, false},
		{"auto", false, "hiv", ilp.CoverageSubsumption, false},
		{"auto", false, "imdb", ilp.CoverageSubsumption, false},
		// User data must not inherit the -dataset heuristic (the old bug:
		// -schema runs picked subsumption because -dataset defaulted free).
		{"auto", true, "hiv", ilp.CoverageDB, false},
		{"", true, "imdb", ilp.CoverageDB, false},
		{"subsumption", true, "uwcse", ilp.CoverageSubsumption, false},
		{"bogus", false, "uwcse", 0, true},
	}
	for _, c := range cases {
		got, err := coverageMode(c.flag, c.userData, c.dataset)
		if c.wantErr {
			if err == nil {
				t.Errorf("coverageMode(%q, %v, %q): want error", c.flag, c.userData, c.dataset)
			}
			continue
		}
		if err != nil {
			t.Errorf("coverageMode(%q, %v, %q): %v", c.flag, c.userData, c.dataset, err)
			continue
		}
		if got != c.want {
			t.Errorf("coverageMode(%q, %v, %q) = %v, want %v", c.flag, c.userData, c.dataset, got, c.want)
		}
	}
}
