// The explain subcommand interrogates a provenance artifact written with
// -provenance: the lineage of a learned clause (the chain of search steps
// from its seed bottom clause), the coverage witness of an example (which
// clause covers it, under which substitution), and which inclusion
// dependencies fired during bottom-clause construction.
//
//	castor explain -provenance prov.jsonl                 # lineage of every learned clause
//	castor explain -provenance prov.jsonl -clause 'advisedby(A,B) :- ...'
//	castor explain -provenance prov.jsonl -inds           # IND firing totals
//	castor explain -provenance prov.jsonl \
//	    -example 'advisedby(person12,person5)'            # coverage witness
//
// The example mode reloads the run's dataset (taken from the artifact's
// meta record; override with -dataset/-variant) and replays the coverage
// test of each learned clause, printing the witnessing substitution of the
// first clause that covers the example.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/logic"
	"repro/internal/obs"
)

// provGraph is a parsed provenance artifact.
type provGraph struct {
	meta    map[string]any
	nodes   map[uint64]obs.ProvNode
	order   []uint64 // node IDs in artifact order
	selects []provSelectRec
	summary *provSummaryRec
}

// provSelectRec mirrors the "select" wire record.
type provSelectRec struct {
	Node   uint64 `json:"node"`
	Clause string `json:"clause"`
	Pos    int    `json:"pos"`
	Neg    int    `json:"neg"`
}

// provSummaryRec mirrors the trailing "summary" wire record.
type provSummaryRec struct {
	Nodes   uint64           `json:"nodes"`
	Dropped uint64           `json:"dropped"`
	Selects int              `json:"selects"`
	INDs    map[string]int64 `json:"ind_firings"`
}

// loadProvenance parses a provenance JSONL artifact.
func loadProvenance(path string) (*provGraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g := &provGraph{nodes: make(map[uint64]obs.ProvNode)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		var kind struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &kind); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		switch kind.Kind {
		case "meta":
			if err := json.Unmarshal(sc.Bytes(), &g.meta); err != nil {
				return nil, fmt.Errorf("%s:%d: %w", path, line, err)
			}
		case "node":
			var n obs.ProvNode
			if err := json.Unmarshal(sc.Bytes(), &n); err != nil {
				return nil, fmt.Errorf("%s:%d: %w", path, line, err)
			}
			g.nodes[n.ID] = n
			g.order = append(g.order, n.ID)
		case "select":
			var s provSelectRec
			if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
				return nil, fmt.Errorf("%s:%d: %w", path, line, err)
			}
			g.selects = append(g.selects, s)
		case "summary":
			var s provSummaryRec
			if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
				return nil, fmt.Errorf("%s:%d: %w", path, line, err)
			}
			g.summary = &s
		default:
			return nil, fmt.Errorf("%s:%d: unknown record kind %q", path, line, kind.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(g.nodes) == 0 && g.summary == nil {
		return nil, fmt.Errorf("%s: no provenance records (was the run started with -provenance?)", path)
	}
	return g, nil
}

// lineage walks first-parent links from id to its root, returning the path
// root-first. A missing link (a dropped or unrecorded parent) ends the walk.
func (g *provGraph) lineage(id uint64) []obs.ProvNode {
	var rev []obs.ProvNode
	seen := make(map[uint64]bool)
	for id != 0 && !seen[id] {
		seen[id] = true
		n, ok := g.nodes[id]
		if !ok {
			break
		}
		rev = append(rev, n)
		if len(n.Parents) == 0 {
			break
		}
		id = n.Parents[0]
	}
	out := make([]obs.ProvNode, len(rev))
	for i, n := range rev {
		out[len(rev)-1-i] = n
	}
	return out
}

// runExplain is the subcommand entry point.
func runExplain(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("castor explain", flag.ContinueOnError)
	provFile := fs.String("provenance", "", "provenance artifact written by castor -provenance (required)")
	clause := fs.String("clause", "", "explain this learned clause only (exact or substring match)")
	example := fs.String("example", "", "explain why this ground example is covered (or not), e.g. 'advisedby(person12,person5)'")
	inds := fs.Bool("inds", false, "print which inclusion dependencies fired, with totals")
	dataset := fs.String("dataset", "", "dataset for -example replay (default: the artifact's meta record)")
	variant := fs.String("variant", "", "schema variant for -example replay (default: the artifact's meta record)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *provFile == "" {
		return fmt.Errorf("-provenance is required")
	}
	g, err := loadProvenance(*provFile)
	if err != nil {
		return err
	}
	printMeta(out, g)
	switch {
	case *example != "":
		return explainExample(out, g, *example, *dataset, *variant)
	case *inds:
		return explainINDs(out, g)
	default:
		return explainLineage(out, g, *clause)
	}
}

// printMeta labels the output with what produced the artifact.
func printMeta(out io.Writer, g *provGraph) {
	if g.meta == nil {
		return
	}
	var parts []string
	for _, k := range []string{"dataset", "variant", "learner", "target", "seed"} {
		if v, ok := g.meta[k]; ok {
			parts = append(parts, fmt.Sprintf("%s=%v", k, v))
		}
	}
	if len(parts) > 0 {
		fmt.Fprintf(out, "run: %s\n", strings.Join(parts, " "))
	}
}

// explainLineage prints, for each selected clause (or the ones matching
// filter), the chain of search steps from its seed bottom clause.
func explainLineage(out io.Writer, g *provGraph, filter string) error {
	if len(g.selects) == 0 {
		return fmt.Errorf("artifact has no selected clauses (the run learned nothing)")
	}
	matched := 0
	for _, s := range g.selects {
		if filter != "" && s.Clause != filter && !strings.Contains(s.Clause, filter) {
			continue
		}
		matched++
		fmt.Fprintf(out, "\nclause: %s\n", s.Clause)
		fmt.Fprintf(out, "  selected with pos=%d neg=%d\n", s.Pos, s.Neg)
		if s.Node == 0 {
			fmt.Fprintln(out, "  lineage: unavailable (no node recorded this clause)")
			continue
		}
		path := g.lineage(s.Node)
		if len(path) == 0 {
			fmt.Fprintf(out, "  lineage: node %d missing from the artifact\n", s.Node)
			continue
		}
		if path[0].Step != obs.StepSeedBottom {
			fmt.Fprintf(out, "  lineage (truncated — root node was dropped):\n")
		} else {
			fmt.Fprintf(out, "  lineage (%d steps):\n", len(path))
		}
		for _, n := range path {
			fmt.Fprintf(out, "    %s\n", renderNode(n))
		}
	}
	if matched == 0 {
		return fmt.Errorf("no selected clause matches %q", filter)
	}
	return nil
}

// renderNode renders one lineage step on one line.
func renderNode(n obs.ProvNode) string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s", n.ID, n.Step)
	if n.Seed != "" {
		fmt.Fprintf(&b, " seed=%s", n.Seed)
	}
	if n.Literals > 0 {
		fmt.Fprintf(&b, " literals=%d", n.Literals)
	}
	if n.Pos >= 0 {
		fmt.Fprintf(&b, " pos=%d neg=%d score=%g", n.Pos, n.Neg, n.Score)
	}
	fmt.Fprintf(&b, " [%s]", n.Disposition)
	if len(n.INDs) > 0 {
		fmt.Fprintf(&b, " inds=%s", strings.Join(n.INDs, "; "))
	}
	return b.String()
}

// explainINDs prints the run's IND firing totals.
func explainINDs(out io.Writer, g *provGraph) error {
	if g.summary == nil {
		return fmt.Errorf("artifact has no summary record (was the run interrupted?)")
	}
	if len(g.summary.INDs) == 0 {
		fmt.Fprintln(out, "no inclusion dependencies fired")
		return nil
	}
	type firing struct {
		ind string
		n   int64
	}
	fired := make([]firing, 0, len(g.summary.INDs))
	for ind, n := range g.summary.INDs {
		fired = append(fired, firing{ind, n})
	}
	sort.Slice(fired, func(i, j int) bool {
		if fired[i].n != fired[j].n {
			return fired[i].n > fired[j].n
		}
		return fired[i].ind < fired[j].ind
	})
	fmt.Fprintf(out, "inclusion dependencies fired during bottom-clause construction:\n")
	for _, f := range fired {
		fmt.Fprintf(out, "  %8d  %s\n", f.n, f.ind)
	}
	return nil
}

// explainExample replays the learned definition's coverage test on one
// ground example and prints the witnessing clause and substitution.
func explainExample(out io.Writer, g *provGraph, example, dataset, variant string) error {
	e, err := logic.ParseAtom(example)
	if err != nil {
		return fmt.Errorf("parsing -example: %w", err)
	}
	if !e.IsGround() {
		return fmt.Errorf("-example must be a ground atom, got %s", e)
	}
	if len(g.selects) == 0 {
		return fmt.Errorf("artifact has no selected clauses to test coverage against")
	}
	if dataset == "" {
		if v, ok := g.meta["dataset"].(string); ok {
			dataset = datasetKey(v)
		}
	}
	if variant == "" {
		variant, _ = g.meta["variant"].(string)
	}
	if dataset == "" {
		return fmt.Errorf("the artifact has no meta record; pass -dataset (and -variant)")
	}
	o := &options{dataset: dataset, variant: variant}
	prob, _, _, _, err := loadProblem(o)
	if err != nil {
		return err
	}
	for _, s := range g.selects {
		c, err := logic.ParseClause(s.Clause)
		if err != nil {
			return fmt.Errorf("parsing selected clause %q: %w", s.Clause, err)
		}
		w := prob.Instance.CoverageWitness(c, e)
		if w == nil {
			continue
		}
		fmt.Fprintf(out, "%s is COVERED\n", e)
		fmt.Fprintf(out, "  witness clause: %s\n", s.Clause)
		fmt.Fprintf(out, "  substitution:\n")
		vars := make([]string, 0, len(w))
		for v := range w {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		for _, v := range vars {
			fmt.Fprintf(out, "    %s -> %s\n", v, w[v].Name)
		}
		return nil
	}
	fmt.Fprintf(out, "%s is NOT covered: no learned clause's body maps into the database under the head match\n", e)
	return nil
}

// datasetKey normalizes a display label ("UW-CSE", "IMDb") back to the
// -dataset flag key.
func datasetKey(label string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(label) {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		}
	}
	return b.String()
}
