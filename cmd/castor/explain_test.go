package main

import (
	"bytes"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// learnWithProvenance drives the full CLI on UW-CSE with -provenance and
// returns the artifact path and the run's stdout.
func learnWithProvenance(t *testing.T, extra func(*options)) (string, string) {
	t.Helper()
	dir := t.TempDir()
	o := options{
		dataset: "uwcse", learner: "castor", coverage: "auto",
		sample: 4, beam: 2, clauseLength: 10, par: 2, seed: 1,
		provFile:   filepath.Join(dir, "prov.jsonl"),
		provSample: 1,
	}
	if extra != nil {
		extra(&o)
	}
	var out bytes.Buffer
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	return o.provFile, out.String()
}

// definitionOf extracts the learned-definition block from run output.
func definitionOf(t *testing.T, out string) string {
	t.Helper()
	_, rest, ok := strings.Cut(out, "learned definition")
	if !ok {
		t.Fatalf("run output has no definition:\n%s", out)
	}
	lines := strings.SplitN(rest, "\n", 2)[1]
	def, _, _ := strings.Cut(lines, "\ntraining-set quality")
	return strings.TrimSpace(def)
}

// TestProvenanceFlagDoesNotChangeDefinition is the CLI-level regression
// guarantee: the same run with and without -provenance learns the
// byte-identical definition, and the artifact it writes parses.
func TestProvenanceFlagDoesNotChangeDefinition(t *testing.T) {
	var without bytes.Buffer
	o := options{
		dataset: "uwcse", learner: "castor", coverage: "auto",
		sample: 4, beam: 2, clauseLength: 10, par: 2, seed: 1,
	}
	if err := run(o, &without); err != nil {
		t.Fatal(err)
	}
	provPath, withOut := learnWithProvenance(t, nil)

	defOff := definitionOf(t, without.String())
	defOn := definitionOf(t, withOut)
	if defOff != defOn {
		t.Errorf("-provenance changed the learned definition:\noff: %s\non:  %s", defOff, defOn)
	}

	g, err := loadProvenance(provPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.nodes) == 0 || len(g.selects) == 0 || g.summary == nil {
		t.Fatalf("artifact incomplete: %d nodes, %d selects, summary=%v",
			len(g.nodes), len(g.selects), g.summary)
	}
	if g.meta["dataset"] != "UW-CSE" || g.meta["learner"] != "Castor" {
		t.Errorf("meta record wrong: %v", g.meta)
	}

	// Every selected clause has a complete lineage ending at a seed bottom
	// clause.
	for _, s := range g.selects {
		if s.Node == 0 {
			t.Errorf("select %q resolves to no node", s.Clause)
			continue
		}
		path := g.lineage(s.Node)
		if len(path) == 0 || path[0].Step != "seed_bottom" {
			t.Errorf("select %q: lineage does not reach a seed bottom clause (%d steps)", s.Clause, len(path))
		}
	}
}

// TestExplainSubcommand drives all three explain modes against a real
// artifact.
func TestExplainSubcommand(t *testing.T) {
	provPath, runOut := learnWithProvenance(t, nil)
	def := definitionOf(t, runOut)
	firstClause := strings.SplitN(def, "\n", 2)[0]

	// Lineage mode (default): every learned clause appears with a lineage.
	var out bytes.Buffer
	if err := runExplain([]string{"-provenance", provPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "clause: "+firstClause) {
		t.Errorf("lineage output missing learned clause %q:\n%s", firstClause, out.String())
	}
	if !strings.Contains(out.String(), "seed_bottom") {
		t.Errorf("lineage output has no seed_bottom step:\n%s", out.String())
	}

	// -clause filters to one clause; an unknown clause is an error.
	out.Reset()
	if err := runExplain([]string{"-provenance", provPath, "-clause", firstClause}, &out); err != nil {
		t.Fatal(err)
	}
	if err := runExplain([]string{"-provenance", provPath, "-clause", "noSuchPredicate(X)"}, &out); err == nil {
		t.Error("unknown -clause did not error")
	}

	// -inds prints firing totals for the UW-CSE INDs.
	out.Reset()
	if err := runExplain([]string{"-provenance", provPath, "-inds"}, &out); err != nil {
		t.Fatal(err)
	}
	if !regexp.MustCompile(`\d+\s+\w+\[\w+\] = \w+\[\w+\]`).MatchString(out.String()) {
		t.Errorf("-inds output has no firing rows:\n%s", out.String())
	}

	// -example resolves a covered positive to its witness clause and
	// substitution, replaying the dataset named in the meta record.
	out.Reset()
	if err := runExplain([]string{"-provenance", provPath, "-example", "advisedBy(stud10,prof9)"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "is COVERED") ||
		!strings.Contains(out.String(), "witness clause:") ||
		!strings.Contains(out.String(), "->") {
		t.Errorf("-example output missing witness:\n%s", out.String())
	}

	// A non-covered example is explained, not an error.
	out.Reset()
	if err := runExplain([]string{"-provenance", provPath, "-example", "advisedBy(stud0,prof0)"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "NOT covered") {
		t.Errorf("-example output missing NOT covered verdict:\n%s", out.String())
	}

	// Usage errors.
	if err := runExplain([]string{}, &out); err == nil {
		t.Error("missing -provenance did not error")
	}
	if err := runExplain([]string{"-provenance", provPath, "-example", "notGround(X)"}, &out); err == nil {
		t.Error("non-ground -example did not error")
	}
}

// TestProvenanceSamplingFlagsStillCompleteLineage: aggressive sampling and
// a tiny node cap drop pruned candidates but never break the lineage of
// selected clauses.
func TestProvenanceSamplingFlagsStillCompleteLineage(t *testing.T) {
	provPath, _ := learnWithProvenance(t, func(o *options) {
		o.provSample = 10
		o.provMaxNodes = 50
	})
	g, err := loadProvenance(provPath)
	if err != nil {
		t.Fatal(err)
	}
	if g.summary == nil {
		t.Fatal("no summary record")
	}
	for _, s := range g.selects {
		path := g.lineage(s.Node)
		if len(path) == 0 || path[0].Step != "seed_bottom" {
			t.Errorf("sampled artifact: select %q lost its lineage", s.Clause)
		}
	}
}
