// Command castor learns a target relation over one of the generated
// benchmark databases — or over a user-supplied database — with any of the
// implemented learners, and prints the learned Horn definition and its
// training-set quality.
//
// Usage:
//
//	castor -dataset uwcse -variant Original -learner castor
//	castor -dataset hiv -variant 4NF-2 -learner aleph-progol
//	castor -dataset imdb -variant Stanford
//
//	# user data: a schema file, a Datalog fact file, and example files
//	castor -schema db.schema -data db.facts \
//	       -pos pos.facts -neg neg.facts -target 'advisedBy(stud, prof)'
//
// File formats are those of internal/relstore: `rel name(attr, …)` /
// `fd` / `ind` / `domain` lines for the schema, one ground fact per line
// for data and examples.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/castor"
	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/foil"
	"repro/internal/golem"
	"repro/internal/ilp"
	"repro/internal/logic"
	"repro/internal/progol"
	"repro/internal/progolem"
	"repro/internal/relstore"
)

func main() {
	dataset := flag.String("dataset", "uwcse", "dataset: uwcse|hiv|imdb")
	variant := flag.String("variant", "", "schema variant (default: first)")
	schemaFile := flag.String("schema", "", "schema file (user data mode)")
	dataFile := flag.String("data", "", "Datalog fact file (user data mode)")
	posFile := flag.String("pos", "", "positive example fact file (user data mode)")
	negFile := flag.String("neg", "", "negative example fact file (user data mode)")
	targetDecl := flag.String("target", "", "target declaration, e.g. 'advisedBy(stud, prof)' (user data mode)")
	valueAttrs := flag.String("values", "", "comma-separated value attribute domains (user data mode)")
	learnerName := flag.String("learner", "castor", "learner: castor|foil|aleph-foil|aleph-progol|progolem|golem")
	sample := flag.Int("sample", 4, "positives sampled per generalization round")
	beam := flag.Int("beam", 2, "beam width")
	clauseLength := flag.Int("clauselength", 10, "max clause length for top-down learners")
	par := flag.Int("par", 4, "coverage-test parallelism")
	seed := flag.Int64("seed", 1, "random seed")
	subsetINDs := flag.Bool("subset-inds", false, "Castor: chase general subset INDs (§7.4)")
	flag.Parse()

	var prob *ilp.Problem
	var pos, neg []logic.Atom
	datasetLabel := *dataset
	if *schemaFile != "" {
		p, err := loadUserProblem(*schemaFile, *dataFile, *posFile, *negFile, *targetDecl, *valueAttrs)
		if err != nil {
			fail(err)
		}
		prob, pos, neg = p, p.Pos, p.Neg
		datasetLabel = *dataFile
		*variant = "user"
	} else {
		ds, err := buildDataset(*dataset)
		if err != nil {
			fail(err)
		}
		if *variant == "" {
			*variant = ds.Variants[0].Name
		}
		p, err := ds.Problem(*variant)
		if err != nil {
			fail(err)
		}
		prob, pos, neg = p, ds.Pos, ds.Neg
		datasetLabel = ds.Name
	}

	var learner ilp.Learner
	switch *learnerName {
	case "castor":
		learner = castor.New()
	case "foil":
		learner = foil.New()
	case "aleph-foil":
		learner = progol.NewAlephFOIL()
	case "aleph-progol":
		learner = progol.NewAlephProgol()
	case "progolem":
		learner = progolem.New()
	case "golem":
		learner = golem.New()
	default:
		fail(fmt.Errorf("unknown learner %q", *learnerName))
	}

	params := ilp.Defaults()
	params.Sample = *sample
	params.BeamWidth = *beam
	params.ClauseLength = *clauseLength
	params.Parallelism = *par
	params.Seed = *seed
	params.SubsetINDs = *subsetINDs
	if *dataset != "uwcse" {
		params.CoverageMode = ilp.CoverageSubsumption
	}

	fmt.Printf("dataset=%s variant=%s learner=%s (%d pos, %d neg, %d tuples)\n",
		datasetLabel, *variant, learner.Name(), len(pos), len(neg), prob.Instance.NumTuples())
	start := time.Now()
	def, err := learner.Learn(prob, params)
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("\nlearned definition (%d clauses, %.2fs):\n", def.Len(), elapsed.Seconds())
	if def.IsEmpty() {
		fmt.Println("  (nothing learned)")
	} else {
		fmt.Println(def)
	}
	m := eval.Evaluate(prob.Instance, def, pos, neg)
	fmt.Printf("\ntraining-set quality: %s\n", m)
}

// loadUserProblem assembles an ILP problem from user-supplied files.
func loadUserProblem(schemaFile, dataFile, posFile, negFile, targetDecl, valueAttrs string) (*ilp.Problem, error) {
	if dataFile == "" || posFile == "" || targetDecl == "" {
		return nil, fmt.Errorf("user data mode needs -schema, -data, -pos and -target")
	}
	sf, err := os.Open(schemaFile)
	if err != nil {
		return nil, err
	}
	defer sf.Close()
	schema, err := relstore.ReadSchema(sf)
	if err != nil {
		return nil, err
	}
	df, err := os.Open(dataFile)
	if err != nil {
		return nil, err
	}
	defer df.Close()
	inst, err := relstore.ReadInstance(df, schema)
	if err != nil {
		return nil, err
	}
	head, err := logic.ParseAtom(targetDecl)
	if err != nil {
		return nil, fmt.Errorf("parsing -target: %w", err)
	}
	attrs := make([]string, head.Arity())
	for i, a := range head.Args {
		attrs[i] = a.Name
	}
	target := &relstore.Relation{Name: head.Pred, Attrs: attrs}
	readExamples := func(path string) ([]logic.Atom, error) {
		if path == "" {
			return nil, nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		clauses, err := logic.ParseProgram(string(data))
		if err != nil {
			return nil, err
		}
		out := make([]logic.Atom, len(clauses))
		for i, c := range clauses {
			if len(c.Body) != 0 || !c.Head.IsGround() {
				return nil, fmt.Errorf("%s: examples must be ground facts, got %v", path, c)
			}
			out[i] = c.Head
		}
		return out, nil
	}
	pos, err := readExamples(posFile)
	if err != nil {
		return nil, err
	}
	neg, err := readExamples(negFile)
	if err != nil {
		return nil, err
	}
	values := map[string]bool{}
	for _, v := range strings.Split(valueAttrs, ",") {
		if v = strings.TrimSpace(v); v != "" {
			values[v] = true
		}
	}
	return &ilp.Problem{Instance: inst, Target: target, Pos: pos, Neg: neg, ValueAttrs: values}, nil
}

func buildDataset(name string) (*datasets.Dataset, error) {
	switch name {
	case "uwcse":
		return datasets.GenerateUWCSE(datasets.DefaultUWCSE())
	case "hiv":
		return datasets.GenerateHIV(datasets.DefaultHIV2K4K())
	case "imdb":
		return datasets.GenerateIMDb(datasets.DefaultIMDb())
	}
	return nil, fmt.Errorf("unknown dataset %q (have uwcse, hiv, imdb)", name)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "castor:", err)
	os.Exit(1)
}
