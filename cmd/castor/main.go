// Command castor learns a target relation over one of the generated
// benchmark databases — or over a user-supplied database — with any of the
// implemented learners, and prints the learned Horn definition and its
// training-set quality.
//
// Usage:
//
//	castor -dataset uwcse -variant Original -learner castor
//	castor -dataset hiv -variant 4NF-2 -learner aleph-progol
//	castor -dataset imdb -variant Stanford
//
//	# user data: a schema file, a Datalog fact file, and example files
//	castor -schema db.schema -data db.facts \
//	       -pos pos.facts -neg neg.facts -target 'advisedBy(stud, prof)'
//
//	# observability: human-readable events, machine-readable trace and
//	# metrics, CPU/heap profiles
//	castor -dataset uwcse -v
//	castor -dataset uwcse -trace trace.jsonl -metrics metrics.json
//	castor -dataset uwcse -cpuprofile cpu.pprof -memprofile mem.pprof
//
//	# span-level tracing (Perfetto-loadable), run report, live server
//	castor -dataset uwcse -chrometrace trace.json -report run.json
//	castor -dataset uwcse -http :6060   # /metrics /progress /debug/pprof/
//
//	# search-graph provenance and explanations
//	castor -dataset uwcse -provenance prov.jsonl -explain-plan
//	castor explain -provenance prov.jsonl          # lineage of every learned clause
//	castor explain -provenance prov.jsonl -inds    # which INDs fired, with totals
//	castor explain -provenance prov.jsonl -example 'advisedBy(stud12,prof5)'
//
// File formats are those of internal/relstore: `rel name(attr, …)` /
// `fd` / `ind` / `domain` lines for the schema, one ground fact per line
// for data and examples. The trace file is JSONL (one event object per
// line); the metrics file is the JSON snapshot of the run's counter/timer
// registry (see README "Observability" for both schemas).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/castor"
	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/foil"
	"repro/internal/golem"
	"repro/internal/ilp"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/progol"
	"repro/internal/progolem"
	"repro/internal/relstore"
)

// options mirrors the command-line flags; run is driven by it so tests
// can exercise the full pipeline without exec'ing the binary.
type options struct {
	dataset, variant                       string
	schemaFile, dataFile, posFile, negFile string
	targetDecl, valueAttrs                 string
	learner                                string
	coverage                               string // auto|direct|subsumption
	sample, beam, clauseLength, par        int
	seed                                   int64
	scale                                  float64
	subsetINDs                             bool

	verbose                bool
	traceFile, metricsFile string
	chromeFile, reportFile string
	httpAddr               string
	httpIdle               time.Duration
	cpuProfile, memProfile string

	flightFile       string
	watchdogStall    time.Duration
	watchdogSelftest bool
	sampleResources  time.Duration
	timelineFile     string
	timelineTick     time.Duration

	provFile     string
	provMaxNodes int64
	provSample   int64
	explainPlan  bool
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "explain" {
		if err := runExplain(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "castor explain:", err)
			os.Exit(1)
		}
		return
	}
	var o options
	flag.StringVar(&o.dataset, "dataset", "uwcse", "dataset: uwcse|hiv|imdb")
	flag.StringVar(&o.variant, "variant", "", "schema variant (default: first)")
	flag.StringVar(&o.schemaFile, "schema", "", "schema file (user data mode)")
	flag.StringVar(&o.dataFile, "data", "", "Datalog fact file (user data mode)")
	flag.StringVar(&o.posFile, "pos", "", "positive example fact file (user data mode)")
	flag.StringVar(&o.negFile, "neg", "", "negative example fact file (user data mode)")
	flag.StringVar(&o.targetDecl, "target", "", "target declaration, e.g. 'advisedBy(stud, prof)' (user data mode)")
	flag.StringVar(&o.valueAttrs, "values", "", "comma-separated value attribute domains (user data mode)")
	flag.StringVar(&o.learner, "learner", "castor", "learner: castor|foil|aleph-foil|aleph-progol|progolem|golem")
	flag.StringVar(&o.coverage, "coverage", "auto", "coverage engine: direct|subsumption|auto (auto picks per generated dataset)")
	flag.IntVar(&o.sample, "sample", 4, "positives sampled per generalization round")
	flag.IntVar(&o.beam, "beam", 2, "beam width")
	flag.IntVar(&o.clauseLength, "clauselength", 10, "max clause length for top-down learners")
	flag.IntVar(&o.par, "par", 0, "coverage-test parallelism (0 = all CPU cores)")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	flag.Float64Var(&o.scale, "scale", 1, "multiply the generated dataset's entity counts (1 = defaults; see README \"Paper-scale data\")")
	flag.BoolVar(&o.subsetINDs, "subset-inds", false, "Castor: chase general subset INDs (§7.4)")
	flag.BoolVar(&o.verbose, "v", false, "log trace events to stderr")
	flag.StringVar(&o.traceFile, "trace", "", "write a JSONL event trace to this file")
	flag.StringVar(&o.metricsFile, "metrics", "", "write the JSON metrics report to this file")
	flag.StringVar(&o.chromeFile, "chrometrace", "", "write a Chrome trace-event (Perfetto) span trace to this file")
	flag.StringVar(&o.reportFile, "report", "", "write the JSON run report (for cmd/obsreport) to this file")
	flag.StringVar(&o.httpAddr, "http", "", "serve /metrics, /progress, /debug/flightrecorder and /debug/pprof/ on this address (e.g. :6060)")
	flag.DurationVar(&o.httpIdle, "http-idle", 0, "keep the -http server alive this long after the run finishes")
	flag.StringVar(&o.flightFile, "flightrecorder", "", "write flight-recorder dumps (JSONL) to this file (default: stderr on dump)")
	flag.DurationVar(&o.watchdogStall, "watchdog-stall", 0, "trip the stall watchdog after this long without heartbeat progress (0 = off)")
	flag.BoolVar(&o.watchdogSelftest, "watchdog-selftest", false, "hold the run idle after learning until the watchdog trips once (CI/debugging)")
	flag.DurationVar(&o.sampleResources, "sample-resources", 0, "sample RSS/heap/goroutines every interval into gauges and the flight recorder (0 = off)")
	flag.StringVar(&o.timelineFile, "timeline", "", "write the metric timeline (JSONL) to this file at run end")
	flag.DurationVar(&o.timelineTick, "timeline-tick", obs.DefaultTimelineTick, "metric timeline sampling interval")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this file")
	flag.StringVar(&o.provFile, "provenance", "", "write the candidate search graph (JSONL) to this file")
	flag.Int64Var(&o.provMaxNodes, "provenance-max-nodes", 0,
		"cap on recorded provenance nodes (0 = default cap, negative = unlimited); past it pruned candidates are dropped")
	flag.Int64Var(&o.provSample, "provenance-sample", 1, "record every Nth pruned candidate (kept nodes always recorded)")
	flag.BoolVar(&o.explainPlan, "explain-plan", false, "print the precompiled bottom-clause plan (IND hop table) before learning")
	flag.Parse()

	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "castor:", err)
		os.Exit(1)
	}
}

func run(o options, out io.Writer) error {
	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	// Instrumentation: counters always (they also feed the summary), the
	// flight recorder always (it is the crash-evidence layer; ~1.5MB),
	// event sinks only where asked.
	reg := obs.NewRegistry()
	fr := obs.NewFlightRecorder(0)
	fr.SetDumpPath(o.flightFile)
	sigq := make(chan os.Signal, 1)
	signal.Notify(sigq, syscall.SIGQUIT)
	defer signal.Stop(sigq)
	go func() {
		// SIGQUIT dumps the ring and keeps running (like a JVM thread
		// dump), so an operator can probe a live learn repeatedly.
		for range sigq {
			fr.DumpNow("sigquit") //nolint:errcheck // best-effort operator dump
		}
	}()
	var tracers []obs.Tracer
	if o.verbose {
		tracers = append(tracers, obs.NewTextSink(os.Stderr))
	}
	var spanSinks []obs.SpanSink
	var traceSink *obs.JSONLSink
	if o.traceFile != "" {
		s, err := obs.CreateJSONLFile(o.traceFile)
		if err != nil {
			return err
		}
		// The sink is both a tracer (event lines) and a span sink (span
		// lines with worker/round tags), so the span graph is
		// reconstructable offline from the trace file alone.
		traceSink = s
		tracers = append(tracers, s)
		spanSinks = append(spanSinks, s)
	}
	var chromeSink *obs.ChromeTraceSink
	if o.chromeFile != "" {
		s, err := obs.CreateChromeTraceFile(o.chromeFile)
		if err != nil {
			return err
		}
		// The sink is both a span sink (slices) and a tracer (instant
		// markers), so flat events line up with the spans around them.
		chromeSink = s
		spanSinks = append(spanSinks, s)
		tracers = append(tracers, s)
	}
	var prog *obs.Progress
	if o.httpAddr != "" {
		prog = obs.NewProgress(reg)
		spanSinks = append(spanSinks, prog)
	}
	var graph *obs.GraphSink
	if o.reportFile != "" || o.httpAddr != "" {
		// Span-graph collection feeds the report's attribution table and
		// the live /critpath endpoint.
		graph = obs.NewGraphSink(0)
		spanSinks = append(spanSinks, graph)
	}
	if spec := os.Getenv("SIRL_TEST_SLOWDOWN"); spec != "" {
		// Test hook: inject a synthetic sleep into the named span kinds
		// (kind=duration,...), so CI can verify obsreport -attrib ranks a
		// known slowdown first. Never affects what is learned — only time.
		slow, err := obs.ParseSlowdown(spec)
		if err != nil {
			return fmt.Errorf("SIRL_TEST_SLOWDOWN: %w", err)
		}
		spanSinks = append(spanSinks, slow)
	}
	obsRun := obs.NewRun(obs.MultiTracer(tracers...), reg).
		WithSpans(obs.MultiSpanSink(spanSinks...)).
		WithFlightRecorder(fr)
	var tl *obs.Timeline
	if o.timelineFile != "" || o.httpAddr != "" {
		tl = obs.StartTimeline(obsRun, o.timelineTick)
	}
	if o.httpAddr != "" {
		srv, err := obs.StartServer(o.httpAddr, reg, prog, fr, tl, graph)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "introspection server on http://%s/ (/metrics /progress /timeline /critpath /debug/flightrecorder /debug/pprof/)\n", srv.Addr())
	}
	if o.sampleResources > 0 {
		smp := obs.StartSampler(obsRun, o.sampleResources)
		defer smp.Stop()
	}
	var wd *obs.Watchdog
	if o.watchdogStall > 0 {
		wd = obs.StartWatchdog(obsRun, o.watchdogStall, func(si obs.StallInfo) {
			fmt.Fprintf(os.Stderr, "watchdog: no heartbeat progress for %s (trip %d); live spans:\n",
				si.Stalled.Round(time.Millisecond), si.Trips)
			if len(si.Spans) == 0 {
				fmt.Fprintln(os.Stderr, "  (no open spans)")
			}
			for _, s := range si.Spans {
				fmt.Fprintf(os.Stderr, "  %s (open %.2fs, id %d)\n", s.Name, s.ElapsedSeconds, s.ID)
			}
			fr.DumpNow("watchdog") //nolint:errcheck // best-effort stall dump
		})
		defer wd.Stop()
	}
	var prov *obs.Prov
	if o.provFile != "" {
		p, err := obs.CreateProvenanceFile(o.provFile,
			obs.ProvOptions{MaxNodes: o.provMaxNodes, SampleEvery: o.provSample})
		if err != nil {
			return err
		}
		prov = p
		obsRun = obsRun.WithProvenance(prov)
	}

	userData := o.schemaFile != ""
	prob, pos, neg, datasetLabel, err := loadProblem(&o)
	if err != nil {
		return err
	}

	var learner ilp.Learner
	switch o.learner {
	case "castor":
		learner = castor.New()
	case "foil":
		learner = foil.New()
	case "aleph-foil":
		learner = progol.NewAlephFOIL()
	case "aleph-progol":
		learner = progol.NewAlephProgol()
	case "progolem":
		learner = progolem.New()
	case "golem":
		learner = golem.New()
	default:
		return fmt.Errorf("unknown learner %q", o.learner)
	}

	params := ilp.Defaults()
	params.Sample = o.sample
	params.BeamWidth = o.beam
	params.ClauseLength = o.clauseLength
	params.Parallelism = o.par
	if params.Parallelism <= 0 {
		params.Parallelism = runtime.NumCPU()
	}
	params.Seed = o.seed
	params.SubsetINDs = o.subsetINDs
	params.Obs = obsRun
	mode, err := coverageMode(o.coverage, userData, o.dataset)
	if err != nil {
		return err
	}
	params.CoverageMode = mode

	if o.explainPlan {
		plan := relstore.CompilePlan(prob.Instance.Schema(), o.subsetINDs)
		fmt.Fprintf(out, "bottom-clause plan for variant %s:\n%s\n", o.variant, plan.Explain())
	}
	prov.Meta(map[string]any{
		"tool":    "castor",
		"dataset": datasetLabel,
		"variant": o.variant,
		"learner": learner.Name(),
		"target":  prob.Target.Name,
		"seed":    o.seed,
	})

	fmt.Fprintf(out, "dataset=%s variant=%s learner=%s (%d pos, %d neg, %d tuples)\n",
		datasetLabel, o.variant, learner.Name(), len(pos), len(neg), prob.Instance.NumTuples())
	start := time.Now()
	def, err := learner.Learn(prob, params)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if err := prov.Close(); err != nil {
		return fmt.Errorf("writing provenance: %w", err)
	}
	fmt.Fprintf(out, "\nlearned definition (%d clauses, %.2fs):\n", def.Len(), elapsed.Seconds())
	if def.IsEmpty() {
		fmt.Fprintln(out, "  (nothing learned)")
	} else {
		fmt.Fprintln(out, def)
	}
	m := eval.Evaluate(prob.Instance, def, pos, neg)
	fmt.Fprintf(out, "\ntraining-set quality: %s\n", m)

	if traceSink != nil {
		if err := traceSink.Close(); err != nil {
			return err
		}
	}
	if chromeSink != nil {
		if err := chromeSink.Close(); err != nil {
			return err
		}
	}
	if o.watchdogSelftest && wd != nil {
		// Deterministic trip for CI: the run is idle now, so the heartbeat
		// counter stops and the watchdog must fire within ~1.25× the stall.
		fmt.Fprintln(out, "watchdog-selftest: holding idle until the watchdog trips")
		deadline := time.Now().Add(10*o.watchdogStall + 5*time.Second)
		for wd.Trips() == 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if wd.Trips() == 0 {
			return fmt.Errorf("watchdog-selftest: watchdog did not trip within %s", 10*o.watchdogStall+5*time.Second)
		}
		fmt.Fprintf(out, "watchdog-selftest: tripped (trips=%d)\n", wd.Trips())
	}
	obsRun.Sample() // final resource sample, so every report carries RSS/heap gauges
	tl.Stop()       // final timeline tick; rings stay servable through -http-idle
	if o.timelineFile != "" {
		if err := tl.WriteJSONLFile(o.timelineFile); err != nil {
			return fmt.Errorf("writing timeline: %w", err)
		}
	}
	report := reg.Snapshot()
	if o.reportFile != "" {
		rr := &obs.RunReport{
			Tool:    "castor",
			When:    time.Now(),
			Dataset: datasetLabel,
			Variant: o.variant,
			Learner: learner.Name(),
			Target:  prob.Target.Name,
			Params: map[string]any{
				"coverage":     o.coverage,
				"sample":       o.sample,
				"beam":         o.beam,
				"clauselength": o.clauseLength,
				"par":          params.Parallelism,
				"seed":         o.seed,
				"subset_inds":  o.subsetINDs,
			},
			Env:            obs.CaptureEnv(o.seed),
			ElapsedSeconds: elapsed.Seconds(),
			Metrics:        report,
			Timeline:       tl.Summary(),
			Definition:     definitionStats(def, m),
		}
		if graph != nil {
			rr.Attrib = obs.Attribute(graph.Graph())
		}
		if err := rr.WriteJSONFile(o.reportFile); err != nil {
			return err
		}
	}
	if o.metricsFile != "" {
		f, err := os.Create(o.metricsFile)
		if err != nil {
			return err
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if o.verbose || o.metricsFile != "" || o.traceFile != "" {
		fmt.Fprintf(out, "\nrun metrics:\n")
		report.WriteSummary(out)
	}
	if o.memProfile != "" {
		f, err := os.Create(o.memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // materialize up-to-date heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	if o.httpAddr != "" && o.httpIdle > 0 {
		fmt.Fprintf(out, "idling %s for introspection (SIGQUIT or /debug/flightrecorder to dump)\n", o.httpIdle)
		time.Sleep(o.httpIdle)
	}
	if o.flightFile != "" {
		// End-of-run dump: the file always holds the final window (any
		// earlier watchdog/sigquit marks are still in the ring, so nothing
		// is lost by the rewrite).
		if err := fr.DumpNow("run_end"); err != nil {
			return fmt.Errorf("writing flight recorder dump: %w", err)
		}
	}
	return nil
}

// definitionStats summarizes the learned definition for the run report.
func definitionStats(def *logic.Definition, m eval.Metrics) *obs.DefinitionStats {
	if def == nil {
		return nil
	}
	lits := 0
	for _, c := range def.Clauses {
		lits += len(c.Body)
	}
	return &obs.DefinitionStats{
		Clauses:   def.Len(),
		Literals:  lits,
		TP:        m.TP,
		FP:        m.FP,
		FN:        m.FN,
		Precision: m.Precision,
		Recall:    m.Recall,
		F1:        m.F1,
	}
}

// loadProblem resolves the learning problem from the flags: a generated
// benchmark dataset, or user-supplied files when -schema is set. It fills
// in o.variant (the default variant, or "user") and returns the dataset
// label runs and reports display.
func loadProblem(o *options) (prob *ilp.Problem, pos, neg []logic.Atom, datasetLabel string, err error) {
	if o.schemaFile != "" {
		p, err := loadUserProblem(o.schemaFile, o.dataFile, o.posFile, o.negFile, o.targetDecl, o.valueAttrs)
		if err != nil {
			return nil, nil, nil, "", err
		}
		o.variant = "user"
		return p, p.Pos, p.Neg, o.dataFile, nil
	}
	ds, err := buildDataset(o.dataset, o.scale, o.variant)
	if err != nil {
		return nil, nil, nil, "", err
	}
	if o.variant == "" {
		o.variant = ds.Variants[0].Name
	}
	p, err := ds.Problem(o.variant)
	if err != nil {
		return nil, nil, nil, "", err
	}
	return p, ds.Pos, ds.Neg, ds.Name, nil
}

// coverageMode resolves the -coverage flag. The dataset heuristic (UW-CSE
// evaluates fastest directly, the larger HIV/IMDb databases via
// θ-subsumption) only ever applies to the generated datasets: user data
// defaults to direct evaluation rather than inheriting whatever the
// unrelated -dataset flag holds.
func coverageMode(flagVal string, userData bool, dataset string) (ilp.CoverageMode, error) {
	switch flagVal {
	case "direct":
		return ilp.CoverageDB, nil
	case "subsumption":
		return ilp.CoverageSubsumption, nil
	case "auto", "":
		if !userData && dataset != "uwcse" {
			return ilp.CoverageSubsumption, nil
		}
		return ilp.CoverageDB, nil
	}
	return 0, fmt.Errorf("unknown -coverage %q (have direct, subsumption, auto)", flagVal)
}

// loadUserProblem assembles an ILP problem from user-supplied files.
func loadUserProblem(schemaFile, dataFile, posFile, negFile, targetDecl, valueAttrs string) (*ilp.Problem, error) {
	if dataFile == "" || posFile == "" || targetDecl == "" {
		return nil, fmt.Errorf("user data mode needs -schema, -data, -pos and -target")
	}
	sf, err := os.Open(schemaFile)
	if err != nil {
		return nil, err
	}
	defer sf.Close()
	schema, err := relstore.ReadSchema(sf)
	if err != nil {
		return nil, err
	}
	df, err := os.Open(dataFile)
	if err != nil {
		return nil, err
	}
	defer df.Close()
	inst, err := relstore.ReadInstance(df, schema)
	if err != nil {
		return nil, err
	}
	head, err := logic.ParseAtom(targetDecl)
	if err != nil {
		return nil, fmt.Errorf("parsing -target: %w", err)
	}
	attrs := make([]string, head.Arity())
	for i, a := range head.Args {
		attrs[i] = a.Name
	}
	target := &relstore.Relation{Name: head.Pred, Attrs: attrs}
	readExamples := func(path string) ([]logic.Atom, error) {
		if path == "" {
			return nil, nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		clauses, err := logic.ParseProgram(string(data))
		if err != nil {
			return nil, err
		}
		out := make([]logic.Atom, len(clauses))
		for i, c := range clauses {
			if len(c.Body) != 0 || !c.Head.IsGround() {
				return nil, fmt.Errorf("%s: examples must be ground facts, got %v", path, c)
			}
			out[i] = c.Head
		}
		return out, nil
	}
	pos, err := readExamples(posFile)
	if err != nil {
		return nil, err
	}
	neg, err := readExamples(negFile)
	if err != nil {
		return nil, err
	}
	values := map[string]bool{}
	for _, v := range strings.Split(valueAttrs, ",") {
		if v = strings.TrimSpace(v); v != "" {
			values[v] = true
		}
	}
	return &ilp.Problem{Instance: inst, Target: target, Pos: pos, Neg: neg, ValueAttrs: values}, nil
}

func buildDataset(name string, scale float64, variant string) (*datasets.Dataset, error) {
	switch name {
	case "uwcse":
		cfg := datasets.DefaultUWCSE()
		cfg.Scale = scale
		return datasets.GenerateUWCSE(cfg)
	case "hiv":
		cfg := datasets.DefaultHIV2K4K()
		cfg.Scale = scale
		if scale > 1 && variant != "" {
			// At scale, deriving the unused variants through the transform
			// pipelines dominates startup; generate only the one learned on.
			cfg.Only = variant
		}
		return datasets.GenerateHIV(cfg)
	case "imdb":
		cfg := datasets.DefaultIMDb()
		cfg.Scale = scale
		return datasets.GenerateIMDb(cfg)
	}
	return nil, fmt.Errorf("unknown dataset %q (have uwcse, hiv, imdb)", name)
}
