package sirl_test

// Machine-readable benchmark emitter. `BENCH_JSON=BENCH_castor.json go test
// -run TestEmitBenchJSON` runs a curated subset of the benchmarks through
// testing.Benchmark and writes one JSON document with ns/op plus the custom
// per-op metrics (covtests/op, covhits/op, nodes/op, ...) each benchmark
// reports. The format is documented in DESIGN.md and consumed by the CI
// observability job; cmd/obsreport diffs run reports, this file covers the
// microbenchmark side.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"repro/internal/obs"
	"repro/internal/relstore"
)

// benchEntry is one benchmark result in the BENCH_castor.json document.
type benchEntry struct {
	Name    string             `json:"name"`
	Iters   int                `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchDocument is the top-level BENCH_castor.json shape. CPUs is the
// effective GOMAXPROCS the suite ran under — the CI bench-smoke matrix
// emits one document per setting, so scaling curves (not just single-core
// numbers) are the regression surface.
type benchDocument struct {
	Suite        string       `json:"suite"`
	GoVersion    string       `json:"go_version"`
	GOOS         string       `json:"goos"`
	GOARCH       string       `json:"goarch"`
	CPUs         int          `json:"cpus"`
	RSSPeakBytes int64        `json:"rss_peak_bytes"`
	Benchmarks   []benchEntry `json:"benchmarks"`
}

// TestEmitBenchJSON is skipped unless BENCH_JSON names an output path. It
// deliberately runs a small, fast subset — the scenarios whose custom
// metrics the regression tooling watches — not the full table/figure suite.
func TestEmitBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<path> to emit the benchmark JSON document")
	}

	prob := benchUWCSEProblem(t, true)
	cands := buildScoringCandidates(t, prob)

	measure := func(name string, f func(*testing.B)) benchEntry {
		r := testing.Benchmark(f)
		if r.N == 0 {
			t.Fatalf("%s: benchmark did not run (a b.Fatal inside testing.Benchmark aborts silently)", name)
		}
		e := benchEntry{Name: name, Iters: r.N, NsPerOp: float64(r.NsPerOp()), Metrics: map[string]float64{}}
		for metric, v := range r.Extra {
			e.Metrics[metric] = v
		}
		// mem_bytes/op is the heap bytes each op allocates (the benchmark
		// helpers call b.ReportAllocs), the per-scenario memory regression
		// surface next to the document-level RSS peak.
		e.Metrics["mem_bytes/op"] = float64(r.AllocedBytesPerOp())
		return e
	}

	doc := benchDocument{
		Suite:     "castor",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.GOMAXPROCS(0),
	}
	doc.Benchmarks = append(doc.Benchmarks,
		measure("CandidateScoring/serial", func(b *testing.B) { benchScoreBatch(b, prob, cands, 1, true) }),
		measure("CandidateScoring/parallel", func(b *testing.B) { benchScoreBatch(b, prob, cands, runtime.GOMAXPROCS(0), true) }),
		measure("CandidateScoring/cached", func(b *testing.B) { benchScoreBatch(b, prob, cands, runtime.GOMAXPROCS(0), false) }),
	)
	for _, shape := range subsumptionShapes() {
		shape := shape
		doc.Benchmarks = append(doc.Benchmarks,
			measure("Subsumption/"+shape.name+"/compiled", func(b *testing.B) { benchSubsumptionCompiled(b, shape) }))
	}
	plan := relstore.CompilePlan(prob.Instance.Schema(), false)
	doc.Benchmarks = append(doc.Benchmarks,
		measure("BottomClause/serial", func(b *testing.B) { benchBottomClause(b, prob, plan, 1) }),
		measure("BottomClause/parallel", func(b *testing.B) { benchBottomClause(b, prob, plan, runtime.GOMAXPROCS(0)) }),
	)

	// RSS after the whole suite: the process's high-water resident set,
	// the "RSS tracked in BENCH" hook of the roadmap.
	doc.RSSPeakBytes = obs.ReadRSS()

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d benchmark entries to %s", len(doc.Benchmarks), path)
}
