package sirl_test

// Machine-readable benchmark emitter. `BENCH_JSON=BENCH_castor.json go test
// -run TestEmitBenchJSON` runs a curated subset of the benchmarks through
// testing.Benchmark and writes one JSON file holding one document per
// GOMAXPROCS setting (BENCH_PROCS, comma-separated; default: the current
// setting), each with ns/op plus the custom per-op metrics (covtests/op,
// covhits/op, nodes/op, ...) the benchmarks report. Parallel entries carry
// a parallel_speedup extra — serial ns/op over parallel ns/op within the
// same document — so the scaling curve, not just single-core numbers, is
// the regression surface. The format is documented in DESIGN.md and
// consumed by the CI bench-smoke job via `obsreport -bench`.

import (
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/relstore"
)

// benchEntry is one benchmark result within a document.
type benchEntry struct {
	Name    string             `json:"name"`
	Iters   int                `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchDocument is one GOMAXPROCS setting's results. CPUs is the effective
// GOMAXPROCS the document's benchmarks ran under.
type benchDocument struct {
	CPUs         int          `json:"cpus"`
	RSSPeakBytes int64        `json:"rss_peak_bytes"`
	Benchmarks   []benchEntry `json:"benchmarks"`
}

// benchFile is the top-level BENCH_castor.json shape: environment
// identification plus one document per GOMAXPROCS setting.
type benchFile struct {
	Suite     string          `json:"suite"`
	GoVersion string          `json:"go_version"`
	GOOS      string          `json:"goos"`
	GOARCH    string          `json:"goarch"`
	Documents []benchDocument `json:"documents"`
}

// benchProcs parses BENCH_PROCS into the GOMAXPROCS settings to emit
// documents for; unset means one document at the current setting.
func benchProcs(t *testing.T) []int {
	env := os.Getenv("BENCH_PROCS")
	if env == "" {
		return []int{runtime.GOMAXPROCS(0)}
	}
	var procs []int
	for _, f := range strings.Split(env, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			t.Fatalf("BENCH_PROCS=%q: each field must be a positive integer", env)
		}
		procs = append(procs, n)
	}
	return procs
}

// TestEmitBenchJSON is skipped unless BENCH_JSON names an output path. It
// deliberately runs a small, fast subset — the scenarios whose custom
// metrics the regression tooling watches — not the full table/figure suite.
func TestEmitBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<path> to emit the benchmark JSON document")
	}

	prob := benchUWCSEProblem(t, true)
	cands := buildScoringCandidates(t, prob)
	plan := relstore.CompilePlan(prob.Instance.Schema(), false)
	rd := benchRelstoreData(t)

	measure := func(name string, f func(*testing.B)) benchEntry {
		r := testing.Benchmark(f)
		if r.N == 0 {
			t.Fatalf("%s: benchmark did not run (a b.Fatal inside testing.Benchmark aborts silently)", name)
		}
		e := benchEntry{Name: name, Iters: r.N, NsPerOp: float64(r.NsPerOp()), Metrics: map[string]float64{}}
		for metric, v := range r.Extra {
			e.Metrics[metric] = v
		}
		// mem_bytes/op is the heap bytes each op allocates (the benchmark
		// helpers call b.ReportAllocs), the per-scenario memory regression
		// surface next to the document-level RSS peak.
		e.Metrics["mem_bytes/op"] = float64(r.AllocedBytesPerOp())
		return e
	}

	file := benchFile{
		Suite:     "castor",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range benchProcs(t) {
		runtime.GOMAXPROCS(procs)
		doc := benchDocument{CPUs: procs}

		serial := measure("CandidateScoring/serial", func(b *testing.B) { benchScoreBatch(b, prob, cands, 1, true) })
		par := measure("CandidateScoring/parallel", func(b *testing.B) { benchScoreBatch(b, prob, cands, procs, true) })
		par.Metrics["parallel_speedup"] = serial.NsPerOp / par.NsPerOp
		doc.Benchmarks = append(doc.Benchmarks, serial, par,
			measure("CandidateScoring/cached", func(b *testing.B) { benchScoreBatch(b, prob, cands, procs, false) }),
		)
		for _, shape := range subsumptionShapes() {
			shape := shape
			doc.Benchmarks = append(doc.Benchmarks,
				measure("Subsumption/"+shape.name+"/compiled", func(b *testing.B) { benchSubsumptionCompiled(b, shape) }))
		}
		bcSerial := measure("BottomClause/serial", func(b *testing.B) { benchBottomClause(b, prob, plan, 1) })
		bcPar := measure("BottomClause/parallel", func(b *testing.B) { benchBottomClause(b, prob, plan, procs) })
		bcPar.Metrics["parallel_speedup"] = bcSerial.NsPerOp / bcPar.NsPerOp
		doc.Benchmarks = append(doc.Benchmarks, bcSerial, bcPar)

		// Relstore: load and probe, legacy versus columnar on an identical
		// workload. The columnar side carries its advantage as explicit
		// extras so CI can gate them as absolute floors (@>=) — the
		// checked-in baseline predates the columnar store, so ratio gates
		// against the baseline file would have nothing to compare to. The
		// +1 in the denominator guards the ratio against a zero-allocation
		// probe op (which the columnar side achieves on the frozen store).
		loadLegacy := measure("RelstoreLoad/legacy", func(b *testing.B) { benchRelstoreLoad(b, rd, false) })
		loadCol := measure("RelstoreLoad/columnar", func(b *testing.B) { benchRelstoreLoad(b, rd, true) })
		loadCol.Metrics["speedup_vs_legacy"] = loadLegacy.NsPerOp / loadCol.NsPerOp
		probeLegacy := measure("RelstoreProbe/legacy", func(b *testing.B) { benchRelstoreProbeLegacy(b, rd) })
		probeCol := measure("RelstoreProbe/columnar", func(b *testing.B) { benchRelstoreProbeColumnar(b, rd) })
		probeCol.Metrics["speedup_vs_legacy"] = probeLegacy.NsPerOp / probeCol.NsPerOp
		probeCol.Metrics["mem_ratio_vs_legacy"] = probeLegacy.Metrics["mem_bytes/op"] / (probeCol.Metrics["mem_bytes/op"] + 1)
		doc.Benchmarks = append(doc.Benchmarks, loadLegacy, loadCol, probeLegacy, probeCol)

		// RSS after the document's suite: the process's high-water resident
		// set, the "RSS tracked in BENCH" hook of the roadmap. Monotone
		// across documents (it is a high-water mark), still recorded per
		// document so single-document CI runs stay comparable.
		doc.RSSPeakBytes = obs.ReadRSS()
		file.Documents = append(file.Documents, doc)
	}

	out, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d documents to %s", len(file.Documents), path)
}
