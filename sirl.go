// Package sirl (Schema Independent Relational Learning) is the public
// facade of this repository, which reproduces "Schema Independent
// Relational Learning" (Picado, Termehchy, Fern, Ataei — SIGMOD 2017).
//
// The facade re-exports the library's stable surface:
//
//   - building relational schemas with constraints and in-memory database
//     instances (relstore);
//   - first-order clauses and Horn definitions with a Datalog-style parser
//     (logic) and θ-subsumption utilities (subsume);
//   - vertical composition/decomposition transformations with instance and
//     definition mappings (transform);
//   - the learners: Castor (the paper's contribution) and the baselines
//     FOIL, Aleph-FOIL, Aleph-Progol, Golem and ProGolem, all behind one
//     Learner interface (ilp);
//   - the query-based A2 learner with its EQ/MQ oracle (loganh);
//   - the benchmark dataset generators (datasets), evaluation helpers
//     (eval) and the paper's experiment runners (experiments).
//
// Quickstart:
//
//	schema := sirl.NewSchema()
//	schema.MustAddRelation("publication", "title", "person")
//	db := sirl.NewInstance(schema)
//	db.MustInsert("publication", "t1", "alice")
//	db.MustInsert("publication", "t1", "bob")
//	prob := &sirl.Problem{
//	    Instance: db,
//	    Target:   &sirl.Relation{Name: "collaborated", Attrs: []string{"person", "person2"}},
//	    Pos:      []sirl.Atom{sirl.GroundAtom("collaborated", "alice", "bob")},
//	}
//	def, err := sirl.NewCastor().Learn(prob, sirl.DefaultParams())
//
// See examples/ for runnable programs and DESIGN.md for the map from the
// paper's sections to packages.
package sirl

import (
	"repro/internal/castor"
	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/foil"
	"repro/internal/golem"
	"repro/internal/ilp"
	"repro/internal/loganh"
	"repro/internal/logic"
	"repro/internal/progol"
	"repro/internal/progolem"
	"repro/internal/relstore"
	"repro/internal/subsume"
	"repro/internal/transform"
)

// Relational store types.
type (
	// Schema is a set of relation symbols plus FD/IND constraints.
	Schema = relstore.Schema
	// Relation is a relation symbol with its attribute sort.
	Relation = relstore.Relation
	// Instance is an in-memory database instance of a schema.
	Instance = relstore.Instance
	// Tuple is one database row.
	Tuple = relstore.Tuple
	// IND is an inclusion dependency.
	IND = relstore.IND
	// FD is a functional dependency.
	FD = relstore.FD
)

// Logic types.
type (
	// Term is a variable or constant.
	Term = logic.Term
	// Atom is a predicate applied to terms.
	Atom = logic.Atom
	// Clause is a definite Horn clause with an ordered body.
	Clause = logic.Clause
	// Definition is a Horn definition: clauses sharing one head predicate.
	Definition = logic.Definition
)

// Learning types.
type (
	// Problem is an ILP task: background knowledge, target, examples.
	Problem = ilp.Problem
	// Params is the shared learner parameter tuple.
	Params = ilp.Params
	// Learner is the interface implemented by every algorithm here.
	Learner = ilp.Learner
	// Metrics reports precision/recall/F1 of a learned definition.
	Metrics = eval.Metrics
	// Pipeline is a composition/decomposition transformation sequence.
	Pipeline = transform.Pipeline
	// Part names one output of a decomposition.
	Part = transform.Part
	// Dataset is a generated benchmark with all its schema variants.
	Dataset = datasets.Dataset
)

// CoverageMode selects how clause coverage is decided.
type CoverageMode = ilp.CoverageMode

// Coverage modes: direct database evaluation, or θ-subsumption against
// ground bottom clauses (the paper's engine for large databases, §7.5.3).
const (
	CoverageDB          = ilp.CoverageDB
	CoverageSubsumption = ilp.CoverageSubsumption
)

// NewSchema returns an empty schema.
func NewSchema() *Schema { return relstore.NewSchema() }

// NewInstance returns an empty instance of the schema.
func NewInstance(s *Schema) *Instance { return relstore.NewInstance(s) }

// NewPipeline starts a transformation pipeline at the schema.
func NewPipeline(s *Schema) *Pipeline { return transform.NewPipeline(s) }

// DefaultParams returns the paper's §9.1.2 parameter settings.
func DefaultParams() Params { return ilp.Defaults() }

// Var returns a variable term.
func Var(name string) Term { return logic.Var(name) }

// Const returns a constant term.
func Const(value string) Term { return logic.Const(value) }

// GroundAtom builds an atom over constants.
func GroundAtom(pred string, values ...string) Atom { return logic.GroundAtom(pred, values...) }

// ParseClause parses a Datalog-style clause ("head(X) :- body(X).").
func ParseClause(src string) (*Clause, error) { return logic.ParseClause(src) }

// MustParseClause is ParseClause that panics on error.
func MustParseClause(src string) *Clause { return logic.MustParseClause(src) }

// ParseDefinition parses a set of clauses sharing one head predicate.
func ParseDefinition(src string) (*Definition, error) { return logic.ParseDefinition(src) }

// Subsumes reports whether clause c θ-subsumes clause d.
func Subsumes(c, d *Clause) bool { return subsume.Subsumes(c, d) }

// EquivalentDefinitions reports semantic equivalence of two Horn
// definitions (mutual containment as unions of conjunctive queries).
func EquivalentDefinitions(a, b *Definition) bool { return subsume.EquivalentDefinitions(a, b) }

// Evaluate scores a definition against labeled examples.
func Evaluate(inst *Instance, def *Definition, pos, neg []Atom) Metrics {
	return eval.Evaluate(inst, def, pos, neg)
}

// NewCastor returns the paper's schema-independent learner (§7).
func NewCastor() Learner { return castor.New() }

// NewFOIL returns the FOIL top-down learner (§5).
func NewFOIL() Learner { return foil.New() }

// NewAlephFOIL returns the greedy Aleph configuration (§9.1.2).
func NewAlephFOIL() Learner { return progol.NewAlephFOIL() }

// NewAlephProgol returns the best-first Aleph/Progol configuration.
func NewAlephProgol() Learner { return progol.NewAlephProgol() }

// NewGolem returns the rlgg-based Golem learner (§6.3).
func NewGolem() Learner { return golem.New() }

// NewProGolem returns the ARMG-based ProGolem learner (§6.4).
func NewProGolem() Learner { return progolem.New() }

// Query-based learning (§8).
type (
	// Oracle answers EQ/MQ queries for a known target definition.
	Oracle = loganh.Oracle
	// QueryStats reports EQ/MQ counts of a query-based run.
	QueryStats = loganh.Stats
)

// NewOracle builds an automatic oracle for a target definition.
func NewOracle(schema *Schema, target *Relation, def *Definition) (*Oracle, error) {
	return loganh.NewOracle(schema, target, def)
}

// LearnByQueries runs the A2-style query-based learner against the oracle.
func LearnByQueries(o *Oracle, schema *Schema, target *Relation) (*Definition, QueryStats, error) {
	return loganh.NewLearner().Learn(o, schema, target)
}

// Dataset generators (§9.1.1).

// GenerateUWCSE builds the UW-CSE benchmark under its four schemas.
func GenerateUWCSE() (*Dataset, error) { return datasets.GenerateUWCSE(datasets.DefaultUWCSE()) }

// GenerateHIV builds the HIV benchmark under its three schemas.
func GenerateHIV() (*Dataset, error) { return datasets.GenerateHIV(datasets.DefaultHIV2K4K()) }

// GenerateIMDb builds the IMDb benchmark under its three schemas.
func GenerateIMDb() (*Dataset, error) { return datasets.GenerateIMDb(datasets.DefaultIMDb()) }
